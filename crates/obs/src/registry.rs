//! Named metrics: counters, gauges, and log-bucketed latency histograms,
//! plus the serialisable [`TelemetrySnapshot`] taken at end of run.
//!
//! Histograms bucket values geometrically. The default resolution is
//! 8 sub-buckets per octave (~±4.4 % relative quantile error, 3.5 KiB
//! per histogram); latency-critical callers can ask for finer buckets
//! via [`Histogram::with_sub`] — e.g. 32 sub-buckets per octave is
//! ~±1.1 % — at proportionally larger (still fixed) size. Quantiles
//! interpolate geometrically *within* the selected bucket, so the
//! error bound is the bucket width, not the half-width-rounded-to-mid
//! of the previous implementation (which biased high quantiles toward
//! bucket midpoints).

use crate::json::{obj, parse, JsonValue};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default sub-buckets per power of two.
pub const DEFAULT_SUB: u32 = 8;
/// Finest supported resolution (sub-buckets per octave).
pub const MAX_SUB: u32 = 64;
/// Lowest representable octave (`2^LO_OCT` ≈ 1.5e-5).
const LO_OCT: i32 = -16;
/// One past the highest representable octave (`2^HI_OCT` ≈ 1.1e12).
const HI_OCT: i32 = 40;

/// Bucket count at a given resolution: one zero/underflow bucket plus
/// the geometric range.
fn n_buckets(sub: u32) -> usize {
    (HI_OCT - LO_OCT) as usize * sub as usize + 1
}

fn bucket_of(v: f64, sub: u32) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0; // zero / negative / non-finite → underflow bucket
    }
    let e = (v.log2() * sub as f64).floor() as i32;
    let lo = LO_OCT * sub as i32;
    let hi = HI_OCT * sub as i32;
    (e.clamp(lo, hi - 1) - lo) as usize + 1
}

/// Geometric lower edge of bucket `b ≥ 1`.
fn bucket_lo(b: usize, sub: u32) -> f64 {
    2f64.powf((b as i32 - 1 + LO_OCT * sub as i32) as f64 / sub as f64)
}

/// Geometric midpoint of a bucket (its representative value).
fn bucket_mid(b: usize, sub: u32) -> f64 {
    if b == 0 {
        return 0.0;
    }
    2f64.powf(((b as i32 - 1 + LO_OCT * sub as i32) as f64 + 0.5) / sub as f64)
}

/// A log-bucketed histogram of non-negative values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    sub: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_sub(DEFAULT_SUB)
    }
}

impl Histogram {
    /// An empty histogram with `sub` sub-buckets per octave (clamped to
    /// `1..=MAX_SUB`). Higher `sub` means tighter quantile error at
    /// proportionally more memory.
    pub fn with_sub(sub: u32) -> Self {
        let sub = sub.clamp(1, MAX_SUB);
        Self {
            sub,
            buckets: vec![0; n_buckets(sub)],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Sub-buckets per octave this histogram was built with.
    pub fn sub(&self) -> u32 {
        self.sub
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Records one value.
    pub fn observe(&mut self, v: f64) {
        self.buckets[bucket_of(v, self.sub)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Approximate quantile `q ∈ [0, 1]`; 0 on an empty histogram.
    ///
    /// Interpolates geometrically within the bucket holding the rank:
    /// error is bounded by one bucket width (`2^(1/sub) − 1` relative),
    /// and the exact observed min/max clamp the extremes.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if b == 0 {
                    // Zero/negative/non-finite observations.
                    return 0f64.clamp(self.min, self.max);
                }
                let lo = bucket_lo(b, self.sub);
                let frac = (rank - seen) as f64 / c as f64;
                let v = lo * 2f64.powf(frac / self.sub as f64);
                return v.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Folds another histogram into this one. Same-resolution merges are
    /// exact (bucket-wise); mixed resolutions re-bucket the other side's
    /// midpoints (still exact in count/sum/min/max).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.sub == other.sub {
            for (b, &c) in other.buckets.iter().enumerate() {
                self.buckets[b] += c;
            }
        } else {
            self.buckets[0] += other.buckets[0];
            for (b, &c) in other.buckets.iter().enumerate().skip(1) {
                if c > 0 {
                    self.buckets[bucket_of(bucket_mid(b, other.sub), self.sub)] += c;
                }
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse form
    /// window logs serialise (exact reconstruction via [`Histogram::from_parts`]).
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse serialised form. The count is
    /// derived from the bucket counts; `min`/`max`/`sum` are the exact
    /// values captured at serialisation time.
    pub fn from_parts(
        sub: u32,
        buckets: &[(usize, u64)],
        sum: f64,
        min: f64,
        max: f64,
    ) -> Result<Self, String> {
        let mut h = Self::with_sub(sub);
        if h.sub != sub {
            return Err(format!("histogram sub {sub} out of range 1..={MAX_SUB}"));
        }
        for &(b, c) in buckets {
            if b >= h.buckets.len() {
                return Err(format!("bucket index {b} out of range for sub {sub}"));
            }
            h.buckets[b] += c;
            h.count += c;
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        Ok(h)
    }

    /// Freezes the histogram into quantile form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Frozen histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observed values.
    pub sum: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// The frozen quantile closest to `q` (p50/p95/p99), for SLO checks
    /// against already-snapshotted metrics files.
    pub fn nearest_quantile(&self, q: f64) -> f64 {
        let candidates = [(0.50, self.p50), (0.95, self.p95), (0.99, self.p99)];
        candidates
            .iter()
            .min_by(|a, b| {
                (a.0 - q)
                    .abs()
                    .partial_cmp(&(b.0 - q).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }
}

/// Last-value gauge with running extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recent value.
    pub last: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
    /// Number of observations.
    pub count: u64,
}

impl GaugeStat {
    fn observe(&mut self, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    fn first(v: f64) -> Self {
        Self {
            last: v,
            min: v,
            max: v,
            count: 1,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter.
    pub fn count(&self, name: &str, n: u64) {
        let mut g = self.inner.lock().expect("obs lock");
        match g.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                g.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Sets the named gauge to `v`.
    pub fn gauge(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().expect("obs lock");
        match g.gauges.get_mut(name) {
            Some(s) => s.observe(v),
            None => {
                g.gauges.insert(name.to_string(), GaugeStat::first(v));
            }
        }
    }

    /// Records `v` into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().expect("obs lock");
        g.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("obs lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Freezes the whole registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let g = self.inner.lock().expect("obs lock");
        TelemetrySnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time, serialisable copy of every metric — the file the
/// `--metrics` CLI flag writes and `trace-validate` reconciles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge statistics by name.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histogram quantiles by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Serialises the snapshot to compact JSON.
    pub fn to_json(&self) -> String {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), JsonValue::Num(v as f64)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        obj([
                            ("last", JsonValue::Num(s.last)),
                            ("min", JsonValue::Num(s.min)),
                            ("max", JsonValue::Num(s.max)),
                            ("count", JsonValue::Num(s.count as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        obj([
                            ("count", JsonValue::Num(h.count as f64)),
                            ("sum", JsonValue::Num(h.sum)),
                            ("min", JsonValue::Num(h.min)),
                            ("max", JsonValue::Num(h.max)),
                            ("p50", JsonValue::Num(h.p50)),
                            ("p95", JsonValue::Num(h.p95)),
                            ("p99", JsonValue::Num(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
        .to_json()
    }

    /// Parses a snapshot serialised by [`TelemetrySnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let num = |o: &JsonValue, k: &str| -> Result<f64, String> {
            o.get(k)
                .and_then(JsonValue::as_num)
                .ok_or(format!("missing field {k}"))
        };
        let mut out = TelemetrySnapshot::default();
        for (k, c) in v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or("missing counters")?
        {
            out.counters.insert(
                k.clone(),
                c.as_u64().ok_or(format!("counter {k} not a u64"))?,
            );
        }
        for (k, g) in v
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or("missing gauges")?
        {
            out.gauges.insert(
                k.clone(),
                GaugeStat {
                    last: num(g, "last")?,
                    min: num(g, "min")?,
                    max: num(g, "max")?,
                    count: num(g, "count")? as u64,
                },
            );
        }
        for (k, h) in v
            .get("histograms")
            .and_then(JsonValue::as_obj)
            .ok_or("missing histograms")?
        {
            out.histograms.insert(
                k.clone(),
                HistogramSnapshot {
                    count: num(h, "count")? as u64,
                    sum: num(h, "sum")?,
                    min: num(h, "min")?,
                    max: num(h, "max")?,
                    p50: num(h, "p50")?,
                    p95: num(h, "p95")?,
                    p99: num(h, "p99")?,
                },
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_a_uniform_ramp() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // One default bucket (2^(1/8) ≈ 9 %) plus discretisation slack.
        assert!((s.p50 / 500.0 - 1.0).abs() < 0.10, "p50 = {}", s.p50);
        assert!((s.p95 / 950.0 - 1.0).abs() < 0.10, "p95 = {}", s.p95);
        assert!((s.p99 / 990.0 - 1.0).abs() < 0.10, "p99 = {}", s.p99);
    }

    #[test]
    fn fine_buckets_pin_quantiles_on_a_uniform_ramp() {
        let mut h = Histogram::with_sub(32);
        for i in 1..=10_000 {
            h.observe(i as f64);
        }
        // Bucket width at sub=32 is 2^(1/32) − 1 ≈ 2.2 %; interpolation
        // keeps the estimate inside one bucket of the exact rank value.
        for (q, exact) in [(0.50, 5000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = h.quantile(q);
            assert!(
                (got / exact - 1.0).abs() < 0.025,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn fine_buckets_pin_quantiles_on_an_exponential() {
        // Deterministic inverse-CDF sample of Exp(1): quantiles of the
        // sample match -ln(1-q) closely at n=20000.
        let n = 20_000;
        let mut h = Histogram::with_sub(32);
        for i in 1..=n {
            let u = (i as f64 - 0.5) / n as f64;
            h.observe(-(1.0 - u).ln());
        }
        for (q, exact) in [
            (0.50, core::f64::consts::LN_2),
            (0.95, -(0.05f64).ln()),
            (0.99, -(0.01f64).ln()),
        ] {
            let got = h.quantile(q);
            assert!(
                (got / exact - 1.0).abs() < 0.03,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn fine_buckets_pin_quantiles_on_a_bimodal_mix() {
        // 90 % fast (1 ms), 10 % slow (100 ms): p95/p99 must land in the
        // slow mode, p50 in the fast mode — the case midpoint rounding
        // gets most wrong.
        let mut h = Histogram::with_sub(32);
        for i in 0..1000 {
            h.observe(if i % 10 == 9 { 100.0 } else { 1.0 });
        }
        assert!((h.quantile(0.50) - 1.0).abs() < 0.03);
        assert!((h.quantile(0.95) / 100.0 - 1.0).abs() < 0.025);
        assert!((h.quantile(0.99) / 100.0 - 1.0).abs() < 0.025);
    }

    #[test]
    fn histogram_handles_edge_values() {
        let mut h = Histogram::default();
        for v in [0.0, -1.0, f64::NAN, 1e-30, 1e30, 42.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        // Quantiles stay within the observed (finite-clamped) range.
        assert!(s.p50.is_finite() && s.p99.is_finite());
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    fn bucket_mid_is_inside_its_bucket() {
        for sub in [1u32, 8, 32, 64] {
            for v in [1e-4, 0.01, 1.0, 3.7, 1000.0, 1e9] {
                let b = bucket_of(v, sub);
                let mid = bucket_mid(b, sub);
                assert!(
                    (mid / v).abs().log2().abs() <= 1.0 / sub as f64,
                    "sub={sub} v={v} mid={mid} off by more than one bucket"
                );
            }
        }
    }

    #[test]
    fn merge_same_resolution_is_exact() {
        let mut a = Histogram::with_sub(32);
        let mut b = Histogram::with_sub(32);
        let mut whole = Histogram::with_sub(32);
        for i in 1..=500 {
            a.observe(i as f64);
            whole.observe(i as f64);
        }
        for i in 501..=1000 {
            b.observe(i as f64);
            whole.observe(i as f64);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_mixed_resolution_keeps_exact_moments() {
        let mut coarse = Histogram::with_sub(8);
        let mut fine = Histogram::with_sub(32);
        for i in 1..=100 {
            coarse.observe(i as f64);
            fine.observe(1000.0 + i as f64);
        }
        coarse.merge(&fine);
        assert_eq!(coarse.count(), 200);
        let want_sum: f64 = (1..=100).map(|i| i as f64).sum::<f64>() * 2.0 + 1000.0 * 100.0;
        assert!((coarse.sum() - want_sum).abs() < 1e-6);
        assert_eq!(coarse.min(), 1.0);
        assert_eq!(coarse.max(), 1100.0);
        // Quantiles stay within coarse-bucket error of the merged truth.
        assert!((coarse.quantile(0.25) / 50.0 - 1.0).abs() < 0.10);
        assert!((coarse.quantile(0.75) / 1050.0 - 1.0).abs() < 0.10);
    }

    #[test]
    fn sparse_parts_round_trip_exactly() {
        let mut h = Histogram::with_sub(32);
        for v in [0.0, 0.5, 0.5, 3.0, 3.1, 250.0, -2.0] {
            h.observe(v);
        }
        let back =
            Histogram::from_parts(h.sub(), &h.nonzero_buckets(), h.sum(), h.min, h.max).unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_parts(32, &[(usize::MAX, 1)], 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn empty_from_parts_is_the_empty_histogram() {
        let h = Histogram::from_parts(8, &[], 0.0, 0.0, 0.0).unwrap();
        assert_eq!(h, Histogram::default());
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn registry_accumulates_and_snapshots() {
        let r = MetricsRegistry::new();
        r.count("engine.fault.dropped_reports", 3);
        r.count("engine.fault.dropped_reports", 2);
        r.gauge("train.query_loss", 0.5);
        r.gauge("train.query_loss", 0.25);
        r.observe("engine.batch.matching_us", 120.0);
        r.observe("engine.batch.matching_us", 80.0);
        assert_eq!(r.counter_value("engine.fault.dropped_reports"), 5);
        let s = r.snapshot();
        assert_eq!(s.counters["engine.fault.dropped_reports"], 5);
        let g = s.gauges["train.query_loss"];
        assert_eq!((g.last, g.min, g.max, g.count), (0.25, 0.25, 0.5, 2));
        let h = s.histograms["engine.batch.matching_us"];
        assert_eq!(h.count, 2);
        assert!((h.sum - 200.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = MetricsRegistry::new();
        r.count("a.b", 7);
        r.gauge("c", -1.5);
        for i in 0..100 {
            r.observe("lat_us", 10.0 + i as f64);
        }
        let s = r.snapshot();
        let back = TelemetrySnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn snapshot_rejects_malformed_json() {
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(TelemetrySnapshot::from_json(r#"{"counters":{"a":-1}}"#).is_err());
        assert!(TelemetrySnapshot::from_json("nonsense").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = MetricsRegistry::new().snapshot();
        assert_eq!(TelemetrySnapshot::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn nearest_quantile_picks_the_closest_frozen_percentile() {
        let snap = HistogramSnapshot {
            p50: 1.0,
            p95: 2.0,
            p99: 3.0,
            ..HistogramSnapshot::default()
        };
        assert_eq!(snap.nearest_quantile(0.5), 1.0);
        assert_eq!(snap.nearest_quantile(0.9), 2.0);
        assert_eq!(snap.nearest_quantile(0.99), 3.0);
        assert_eq!(snap.nearest_quantile(1.0), 3.0);
    }
}

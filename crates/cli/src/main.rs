//! `tamp-cli` — run the TAMP simulator from the command line.
//!
//! ```text
//! tamp-cli generate  --kind porto|gowalla --scale tiny|small|paper --seed N --out workload.json
//! tamp-cli simulate  [--workload file.json | --kind ... --scale ... --seed N]
//!                    --algo ppi|km|ggpso|ub|lb [--loss task|mse] [--detour KM]
//!                    [--tasks N] [--json]
//! tamp-cli predict   [--workload file.json | --kind ... --scale ... --seed N]
//!                    --algo gttaml|gttaml-gt|ctml|maml [--loss task|mse] [--json]
//! ```
//!
//! `simulate` runs the full offline + online pipeline and prints the
//! paper's four assignment metrics; `predict` stops after the offline
//! stage and prints RMSE/MAE/MR/TT; `serve` runs the long-running
//! sharded service host over replayed workloads (docs/serving.md) and
//! prints the same metric block per shard.
//!
//! Telemetry (docs/telemetry.md): `--trace FILE` streams one JSONL event
//! per span/counter/gauge to FILE; `--metrics FILE` writes the end-of-run
//! `TelemetrySnapshot` as JSON. `trace-validate` re-parses a trace (and
//! optionally reconciles it against a metrics snapshot) — the CI gate.

mod args;

use args::Args;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use tamp_obs::{
    Event, EventKind, JsonlRecorder, LiveView, NullRecorder, Obs, SamplingRecorder, ScopeCell,
    SloEngine, SloKind, SloOutcome, SloSet, SloSpec, TelemetrySnapshot, WindowSnapshot,
    WindowedRegistry, SAMPLED_SPAN_PREFIX,
};
use tamp_platform::{
    run_assignment_observed, train_predictors_observed, AssignmentAlgo, AssignmentMetrics,
    EngineConfig, KernelBackend, LossKind, PredictionAlgo, SolverKind, TrainingConfig,
};
use tamp_serve::{
    http_get, HostConfig, MetricsServer, OverloadPolicy, Pacing, ServeHost, ServeReport, Shard,
    ShardConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

const HELP: &str = "\
tamp-cli — mobility prediction-aware spatial crowdsourcing simulator

USAGE:
  tamp-cli generate --out FILE [--kind porto|gowalla] [--scale tiny|small|paper]
                    [--seed N] [--detour KM] [--tasks N]
  tamp-cli simulate [--workload FILE | generation options] --algo ppi|km|ggpso|ub|lb
                    [--loss task|mse] [--json] [--trace FILE] [--metrics FILE]
                    [--solver exact|auction]  (matching backend: dense exact KM or
                                      sparse sub-cubic forward auction; default exact)
                    [--no-index]  (disable spatial prefiltering; same results, slower)
                    [--kernel-backend scalar|batched]  (rollout kernel backend; scalar
                                      is bitwise-reproducible and the default; batched
                                      is faster but only rel-tol accurate)
                    [--rollout-batch N]  (workers per batched rollout GEMM; 1 =
                                      serial legacy path, default 1)
                    [--kernel-rtol T]  (batched-vs-scalar relative tolerance
                                      gate; default 1e-9)
                    [--train-threads N]  (training threads; 0 = all cores, default 1;
                                          results are identical for every N)
  tamp-cli predict  [--workload FILE | generation options]
                    [--algo gttaml|gttaml-gt|ctml|maml] [--loss task|mse] [--json]
                    [--trace FILE] [--metrics FILE] [--train-threads N]
  tamp-cli serve    [--shards N] [generation options] [--algo ppi|km|ggpso|ub|lb]
                    [--queue-cap N]  (submission-queue capacity per shard)
                    [--threads N]    (shard-stepping threads; identical results for any N)
                    [--no-cache]     (disable the cross-batch prediction cache;
                                      same results, more rollout work)
                    [--overload shed|degrade|backpressure]  (queue-overflow policy)
                    [--retry-limit N]   (backpressure offer attempts; default 3)
                    [--snapshot-every N --snapshot-dir DIR]  (crash-safety snapshots)
                    [--crash-shard I --crash-window W]  (drill: kill+restore shard I
                                      after W windows; results must be identical)
                    [--metrics-addr HOST:PORT]  (live exporter: GET /metrics
                                      Prometheus text, GET /metrics.json JSON)
                    [--windows-log FILE]  (append one JSON line per sealed window)
                    [--slo FILE]     (evaluate a TOML/JSON SLO spec live; verdicts
                                      land in the report and slo.violation counters)
                    [--report FILE]  (write the full ServeReport as JSON)
                    [--trace-sample-head N]  (keep the first N trace events per
                                      name+kind; exact-count corrections at flush)
                    [--perturb-sleep-ms MS]  (seeded latency regression drill)
                    [--solver exact|auction] [--no-index] [--loss task|mse]
                    [--kernel-backend scalar|batched] [--rollout-batch N] [--kernel-rtol T]
                    [--json] [--trace FILE] [--metrics FILE] [--train-threads N]
                    (shard i uses seed SEED+i; see docs/serving.md)
  tamp-cli metrics  --addr HOST:PORT [--json]   (one-shot fleet table from a
                                      running exporter's /metrics.json)
  tamp-cli slo-check --spec FILE [--windows FILE] [--metrics FILE] [--trace FILE]
                    [--serve-latency FILE]   (offline SLO evaluation; exits
                                      nonzero when any objective is breached)
  tamp-cli trace-validate --trace FILE [--metrics FILE] [--windows FILE]
                    [--serve-report FILE]
  tamp-cli help
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    // Surface obvious typos: every command shares one option vocabulary.
    const KNOWN: [&str; 39] = [
        "out",
        "workload",
        "kind",
        "scale",
        "seed",
        "algo",
        "loss",
        "detour",
        "tasks",
        "json",
        "trace",
        "metrics",
        "no-index",
        "solver",
        "kernel-backend",
        "rollout-batch",
        "kernel-rtol",
        "train-threads",
        "shards",
        "queue-cap",
        "threads",
        "no-cache",
        "overload",
        "retry-limit",
        "snapshot-every",
        "snapshot-dir",
        "crash-shard",
        "crash-window",
        "metrics-addr",
        "windows-log",
        "slo",
        "report",
        "trace-sample-head",
        "perturb-sleep-ms",
        "addr",
        "spec",
        "windows",
        "serve-report",
        "serve-latency",
    ];
    for name in args.option_names() {
        if !KNOWN.contains(&name) {
            eprintln!("warning: unknown option --{name} (ignored)");
        }
    }
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("predict") => cmd_predict(&args),
        Some("serve") => cmd_serve(&args),
        Some("metrics") => cmd_metrics(&args),
        Some("slo-check") => cmd_slo_check(&args),
        Some("trace-validate") => cmd_trace_validate(&args),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "paper" => Ok(Scale::paper_workload1()),
        other => Err(format!("unknown scale: {other}")),
    }
}

fn parse_kind(s: &str) -> Result<WorkloadKind, String> {
    match s {
        "porto" | "workload1" => Ok(WorkloadKind::PortoDidi),
        "gowalla" | "workload2" => Ok(WorkloadKind::GowallaFoursquare),
        other => Err(format!("unknown workload kind: {other}")),
    }
}

fn parse_loss(s: &str) -> Result<LossKind, String> {
    match s {
        "task" | "task-oriented" => Ok(LossKind::TaskOriented),
        "mse" => Ok(LossKind::Mse),
        other => Err(format!("unknown loss: {other}")),
    }
}

fn build_or_load(args: &Args) -> Result<Workload, String> {
    if let Some(path) = args.get("workload") {
        return Workload::load_json(Path::new(path)).map_err(|e| format!("load {path}: {e}"));
    }
    let kind = parse_kind(args.get_or("kind", "porto"))?;
    let scale = parse_scale(args.get_or("scale", "small"))?;
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let mut cfg = WorkloadConfig::new(kind, scale, seed);
    if let Some(d) = args.get_parsed::<f64>("detour")? {
        cfg.detour_limit_km = d;
    }
    if let Some(n) = args.get_parsed::<usize>("tasks")? {
        cfg.scale.n_tasks = n;
    }
    Ok(cfg.build())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("generate needs --out FILE")?;
    let workload = build_or_load(args)?;
    workload
        .save_json(Path::new(out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} workers, {} tasks, horizon {:.0} min",
        workload.workers.len(),
        workload.tasks.len(),
        workload.horizon.as_f64()
    );
    Ok(())
}

fn training_config(args: &Args) -> Result<TrainingConfig, String> {
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let mut cfg = TrainingConfig {
        seed,
        ..TrainingConfig::default()
    };
    cfg.loss = parse_loss(args.get_or("loss", "task"))?;
    if let Some(t) = args.get_parsed::<usize>("train-threads")? {
        cfg.meta.threads = t;
    }
    Ok(cfg)
}

/// Builds the telemetry handle from `--trace` / `--metrics`.
///
/// `--trace FILE` streams JSONL events; `--metrics FILE` only needs the
/// in-process registry, so without a trace path the recorder is a
/// [`NullRecorder`]. Neither flag → a disabled handle (zero overhead).
/// `--trace-sample-head N` wraps the trace recorder in per-name head
/// sampling; dropped spans surface as `obs.sampled.*` correction
/// counters so `trace-validate` can still reconcile exactly.
fn make_obs(args: &Args) -> Result<Obs, String> {
    let head = args.get_parsed::<u64>("trace-sample-head")?;
    match args.get("trace") {
        Some(path) => {
            let rec = JsonlRecorder::create(Path::new(path))
                .map_err(|e| format!("create trace {path}: {e}"))?;
            Ok(match head {
                Some(n) => Obs::new(SamplingRecorder::new(rec, n)),
                None => Obs::new(rec),
            })
        }
        None if args.get("metrics").is_some() => Ok(Obs::new(NullRecorder)),
        None => Ok(Obs::null()),
    }
}

/// Flushes the trace and writes the `--metrics` snapshot, if requested.
fn finish_obs(args: &Args, obs: &Obs) -> Result<(), String> {
    obs.flush();
    if let Some(path) = args.get("metrics") {
        let path = Path::new(path);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, obs.snapshot().to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn parse_algo(s: &str) -> Result<AssignmentAlgo, String> {
    match s {
        "ppi" => Ok(AssignmentAlgo::Ppi),
        "km" => Ok(AssignmentAlgo::Km),
        "ggpso" => Ok(AssignmentAlgo::Ggpso),
        "ub" => Ok(AssignmentAlgo::Ub),
        "lb" => Ok(AssignmentAlgo::Lb),
        other => Err(format!("unknown assignment algorithm: {other}")),
    }
}

/// The deterministic result block `simulate` and `serve` share — CI
/// diffs these lines between the two paths, so they must stay
/// byte-identical for identical runs (timings are printed separately).
fn print_assignment_block(m: &AssignmentMetrics) {
    println!("tasks            : {}", m.tasks_total);
    println!(
        "completed        : {} ({:.3})",
        m.completed,
        m.completion_ratio()
    );
    println!(
        "rejected         : {} ({:.3})",
        m.rejected,
        m.rejection_ratio()
    );
    println!("avg worker cost  : {:.2} km", m.avg_worker_cost_km());
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let workload = build_or_load(args)?;
    let obs = make_obs(args)?;
    let algo = parse_algo(args.get_or("algo", "ppi"))?;
    let needs_predictors = !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb);
    let predictors = if needs_predictors {
        let tcfg = training_config(args)?;
        eprintln!(
            "training predictors ({:?}, {:?} loss)...",
            tcfg.algo, tcfg.loss
        );
        Some(train_predictors_observed(&workload, &tcfg, &obs))
    } else {
        None
    };
    let engine = EngineConfig {
        seed: args.get_parsed::<u64>("seed")?.unwrap_or(42),
        spatial_index: !args.flag("no-index"),
        solver: args.get_or("solver", "exact").parse::<SolverKind>()?,
        kernel: args
            .get_or("kernel-backend", "scalar")
            .parse::<KernelBackend>()?,
        rollout_batch: args.get_parsed::<usize>("rollout-batch")?.unwrap_or(1),
        kernel_rtol: args.get_parsed::<f64>("kernel-rtol")?.unwrap_or(1e-9),
        ..EngineConfig::default()
    };
    let m = run_assignment_observed(
        &workload,
        predictors.as_ref(),
        algo,
        &engine,
        None,
        None,
        &obs,
    )
    .map_err(|e| e.to_string())?;
    finish_obs(args, &obs)?;
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{algo:?}"),
                "tasks_total": m.tasks_total,
                "completed": m.completed,
                "rejected": m.rejected,
                "completion_ratio": m.completion_ratio(),
                "rejection_ratio": m.rejection_ratio(),
                "avg_worker_cost_km": m.avg_worker_cost_km(),
                "algo_seconds": m.algo_seconds,
            })
        );
    } else {
        println!("algorithm        : {algo:?}");
        print_assignment_block(&m);
        println!("algorithm runtime: {:.3} s", m.algo_seconds);
    }
    Ok(())
}

/// The long-running service host: one shard per `--shards`, shard `i`
/// generated (and trained, and seeded) with `SEED + i`, so each shard's
/// result block is byte-identical to `simulate --seed SEED+i` — the CI
/// smoke gate diffs exactly that. The cross-batch prediction cache is
/// on unless `--no-cache` (results are identical either way).
fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.get("workload").is_some() {
        return Err("serve generates one workload per shard; --workload is not supported".into());
    }
    let n_shards = args.get_parsed::<usize>("shards")?.unwrap_or(2).max(1);
    let base_seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let algo = parse_algo(args.get_or("algo", "ppi"))?;
    let kind = parse_kind(args.get_or("kind", "porto"))?;
    let scale = parse_scale(args.get_or("scale", "small"))?;
    let queue_capacity = args.get_parsed::<usize>("queue-cap")?.unwrap_or(4096);
    let threads = args.get_parsed::<usize>("threads")?.unwrap_or(1).max(1);
    let overload = match args.get_or("overload", "shed") {
        "shed" => OverloadPolicy::Shed,
        "degrade" => OverloadPolicy::DegradeToFallback,
        "backpressure" => OverloadPolicy::Backpressure {
            retry_limit: args.get_parsed::<u32>("retry-limit")?.unwrap_or(3),
        },
        other => return Err(format!("unknown overload policy: {other}")),
    };
    let snapshot_every = args.get_parsed::<u64>("snapshot-every")?;
    let snapshot_dir = args.get("snapshot-dir").map(std::path::PathBuf::from);
    if snapshot_every.is_some() != snapshot_dir.is_some() {
        return Err("--snapshot-every and --snapshot-dir must be given together".into());
    }
    if let Some(dir) = &snapshot_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let crash_shard = args.get_parsed::<usize>("crash-shard")?;
    let crash_window = args.get_parsed::<usize>("crash-window")?;
    if crash_shard.is_some() != crash_window.is_some() {
        return Err("--crash-shard and --crash-window must be given together".into());
    }
    let slo_set = match args.get("slo") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            Some(SloSet::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let perturb_ms = args.get_parsed::<f64>("perturb-sleep-ms")?.unwrap_or(0.0);
    let window_log = args.get("windows-log").map(std::path::PathBuf::from);
    let metrics_addr = args.get("metrics-addr");
    // The windowed registry backs the exporter, the window log, and the
    // live SLO engine alike; retain enough sealed windows for the widest
    // SLO window, with a floor that keeps ad-hoc scrapes informative.
    let retain = slo_set.as_ref().map_or(0, SloSet::max_window).max(16);
    let live = (slo_set.is_some() || window_log.is_some() || metrics_addr.is_some())
        .then(|| Arc::new(WindowedRegistry::new(retain)));
    let obs = make_obs(args)?;
    let needs_predictors = !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb);

    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let seed = base_seed + i as u64;
        let mut wcfg = WorkloadConfig::new(kind, scale, seed);
        if let Some(d) = args.get_parsed::<f64>("detour")? {
            wcfg.detour_limit_km = d;
        }
        if let Some(n) = args.get_parsed::<usize>("tasks")? {
            wcfg.scale.n_tasks = n;
        }
        let workload = wcfg.build();
        let predictors = if needs_predictors {
            let mut tcfg = training_config(args)?;
            tcfg.seed = seed;
            eprintln!(
                "shard{i}: training predictors ({:?}, {:?} loss)...",
                tcfg.algo, tcfg.loss
            );
            Some(train_predictors_observed(&workload, &tcfg, &obs))
        } else {
            None
        };
        let cfg = ShardConfig {
            algo,
            engine: EngineConfig {
                seed,
                spatial_index: !args.flag("no-index"),
                prediction_cache: !args.flag("no-cache"),
                solver: args.get_or("solver", "exact").parse::<SolverKind>()?,
                kernel: args
                    .get_or("kernel-backend", "scalar")
                    .parse::<KernelBackend>()?,
                rollout_batch: args.get_parsed::<usize>("rollout-batch")?.unwrap_or(1),
                kernel_rtol: args.get_parsed::<f64>("kernel-rtol")?.unwrap_or(1e-9),
                ..EngineConfig::default()
            },
            faults: None,
            queue_capacity,
            overload,
            perturb_step_sleep_ms: perturb_ms,
        };
        let shard = Shard::new(format!("shard{i}"), workload, predictors, cfg)
            .map_err(|e| e.to_string())?;
        shards.push(shard);
    }

    let mut host = ServeHost::new(
        shards,
        HostConfig {
            threads,
            pacing: Pacing::FullSpeed,
            snapshot_every,
            snapshot_dir,
            live: live.clone(),
            window_log,
            slo: slo_set,
        },
    );
    let _exporter = match metrics_addr {
        Some(addr) => {
            let src_obs = obs.clone();
            let src_live = live.clone();
            let server = MetricsServer::bind(
                addr,
                Arc::new(move || {
                    (
                        src_obs.snapshot(),
                        src_live.as_ref().map(|l| l.view(retain)),
                    )
                }),
            )
            .map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!(
                "metrics exporter listening on http://{}/metrics",
                server.local_addr()
            );
            Some(server)
        }
        None => None,
    };
    if let (Some(si), Some(w)) = (crash_shard, crash_window) {
        if si >= n_shards {
            return Err(format!("--crash-shard {si}: only {n_shards} shards"));
        }
        host.run_windows(w, &obs);
        host.crash_restore_shard(si).map_err(|e| e.to_string())?;
        eprintln!("crash drill: killed and restored shard{si} after {w} windows");
    }
    let report = host.run(&obs);
    finish_obs(args, &obs)?;
    if let Some(path) = args.get("report") {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote serve report to {path}");
    }

    if args.flag("json") {
        let shards: Vec<serde_json::Value> = report
            .shards
            .iter()
            .map(|r| {
                serde_json::json!({
                    "shard": r.name,
                    "windows": r.windows,
                    "tasks_total": r.metrics.tasks_total,
                    "completed": r.metrics.completed,
                    "rejected": r.metrics.rejected,
                    "completion_ratio": r.metrics.completion_ratio(),
                    "rejection_ratio": r.metrics.rejection_ratio(),
                    "avg_worker_cost_km": r.metrics.avg_worker_cost_km(),
                    "submitted": r.counts.submitted_tasks + r.counts.submitted_reports,
                    "shed": r.counts.shed(),
                    "degraded": r.counts.degraded(),
                    "retried": r.counts.retried,
                    "crashes": r.crashes,
                    "cache_hits": r.cache.hits,
                    "cache_misses": r.cache.misses,
                    "cache_hit_rate": r.cache_hit_rate(),
                    "batch_p50_ms": r.batch_p50_ms,
                    "batch_p95_ms": r.batch_p95_ms,
                    "batch_p99_ms": r.batch_p99_ms,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{algo:?}"),
                "windows": report.windows,
                "shards": shards,
                "slos": &report.slos,
            })
        );
    } else {
        for (i, r) in report.shards.iter().enumerate() {
            println!("-- {} (seed {}, {algo:?})", r.name, base_seed + i as u64);
            print_assignment_block(&r.metrics);
            println!(
                "windows          : {} ({:.2} ms p50, {:.2} ms p95, {:.2} ms p99)",
                r.windows, r.batch_p50_ms, r.batch_p95_ms, r.batch_p99_ms
            );
            println!(
                "submissions      : {} accepted, {} shed, {} degraded, {} retried",
                r.counts.submitted_tasks + r.counts.submitted_reports,
                r.counts.shed(),
                r.counts.degraded(),
                r.counts.retried
            );
            if r.crashes > 0 {
                println!("crash restores   : {}", r.crashes);
            }
            println!(
                "prediction cache : {} hits, {} misses ({:.3} hit rate), {} invalidated",
                r.cache.hits,
                r.cache.misses,
                r.cache_hit_rate(),
                r.cache.invalidations
            );
        }
        if !report.slos.is_empty() {
            println!("-- SLOs");
            for s in &report.slos {
                println!(
                    "{:<16} : {} — {} max {:.3}, {}/{} violations (burn {:.2}, allowed {:.2}), \
                     worst {:.3}",
                    s.name,
                    if s.breached { "BREACHED" } else { "ok" },
                    s.metric,
                    s.max,
                    s.violations,
                    s.evaluated,
                    s.burn_rate,
                    s.max_burn_rate,
                    s.worst
                );
            }
        }
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let workload = build_or_load(args)?;
    let obs = make_obs(args)?;
    let mut tcfg = training_config(args)?;
    tcfg.algo = match args.get_or("algo", "gttaml") {
        "gttaml" => PredictionAlgo::Gttaml,
        "gttaml-gt" => PredictionAlgo::GttamlGt,
        "ctml" => PredictionAlgo::Ctml,
        "maml" => PredictionAlgo::Maml,
        other => return Err(format!("unknown prediction algorithm: {other}")),
    };
    let p = train_predictors_observed(&workload, &tcfg, &obs);
    finish_obs(args, &obs)?;
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{:?}", tcfg.algo),
                "rmse_cells": p.overall.rmse_cells,
                "mae_cells": p.overall.mae_cells,
                "matching_rate": p.overall.mr,
                "train_seconds": p.train_seconds,
                "clusters": p.n_clusters,
            })
        );
    } else {
        println!("algorithm     : {:?}", tcfg.algo);
        println!("RMSE          : {:.4} cells", p.overall.rmse_cells);
        println!("MAE           : {:.4} cells", p.overall.mae_cells);
        println!("matching rate : {:.4}", p.overall.mr);
        println!("training time : {:.1} s", p.train_seconds);
        println!("leaf clusters : {}", p.n_clusters);
    }
    Ok(())
}

/// One-shot fleet table scraped from a running `serve --metrics-addr`
/// exporter's `/metrics.json` endpoint. `--json` passes the raw
/// payload through instead.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").ok_or("metrics needs --addr HOST:PORT")?;
    let body = http_get(addr, "/metrics.json").map_err(|e| format!("scrape {addr}: {e}"))?;
    if args.flag("json") {
        println!("{body}");
        return Ok(());
    }
    let doc = tamp_obs::json::parse(&body).map_err(|e| format!("{addr}: bad payload: {e}"))?;
    let live = match doc.get("live") {
        None | Some(tamp_obs::json::JsonValue::Null) => None,
        Some(v) => Some(LiveView::from_json_value(v).map_err(|e| format!("{addr}: {e}"))?),
    };
    let Some(view) = live else {
        println!("no live windowed metrics (serve is running without a windowed registry)");
        return Ok(());
    };
    match view.latest {
        Some(w) => println!("window {w} ({} trailing merged)", view.windows_merged),
        None => println!("no window sealed yet"),
    }
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "scope", "submitted", "shed", "degraded", "p50 ms", "p95 ms", "p99 ms", "queue"
    );
    for (scope, cell) in &view.scopes {
        print_metrics_row(scope, cell);
    }
    print_metrics_row("fleet", &view.fleet);
    Ok(())
}

/// One `tamp metrics` table row (the fleet row sums every scope's
/// gauges, so its queue column is the fleet-wide depth).
fn print_metrics_row(scope: &str, cell: &ScopeCell) {
    let c = |n: &str| cell.counters.get(n).copied().unwrap_or(0);
    let (p50, p95, p99) = cell
        .histograms
        .get("serve.step.latency_ms")
        .map(|h| (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)))
        .unwrap_or((0.0, 0.0, 0.0));
    let queue = cell.gauges.get("serve.queue.depth").copied().unwrap_or(0.0);
    println!(
        "{scope:<12} {:>10} {:>8} {:>8} {p50:>9.3} {p95:>9.3} {p99:>9.3} {queue:>7.0}",
        c("serve.submitted"),
        c("serve.shed"),
        c("serve.overload.degraded"),
    );
}

/// A one-shot outcome for offline sources that reduce each spec to a
/// single value (metrics snapshots, traces, sweep rows): one
/// evaluation, burn rate 0 or 1.
fn single_outcome(spec: &SloSpec, value: f64) -> SloOutcome {
    let violated = value > spec.max;
    let burn_rate = if violated { 1.0 } else { 0.0 };
    SloOutcome {
        name: spec.name.clone(),
        metric: spec.metric.clone(),
        max: spec.max,
        evaluated: 1,
        violations: violated as u64,
        burn_rate,
        max_burn_rate: spec.max_burn_rate,
        breached: violated && burn_rate > spec.max_burn_rate,
        last: value,
        worst: value,
    }
}

/// Replays a `--windows-log` JSONL file through a fresh [`SloEngine`] —
/// the exact evaluation the live host ran, reproduced offline.
fn slo_check_windows(set: &SloSet, path: &str) -> Result<Vec<SloOutcome>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // Same retention rule as `serve`, so replayed verdicts match live.
    let reg = WindowedRegistry::new(set.max_window().max(16));
    let mut engine = SloEngine::new(set.clone());
    let mut sealed = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let snap =
            WindowSnapshot::from_json(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        reg.push_sealed(snap);
        engine.evaluate(&reg);
        sealed += 1;
    }
    if sealed == 0 {
        return Err(format!("{path}: no sealed windows"));
    }
    Ok(engine.outcomes())
}

/// Evaluates quantile specs against a cumulative `--metrics` snapshot
/// (whole-run quantiles; rate specs need per-window data and are
/// skipped with a note).
fn slo_check_metrics(set: &SloSet, path: &str) -> Result<Vec<SloOutcome>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snap = TelemetrySnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for spec in &set.slos {
        match spec.kind {
            SloKind::Quantile(q) => match snap.histograms.get(&spec.metric) {
                Some(h) => out.push(single_outcome(spec, h.nearest_quantile(q))),
                None => eprintln!(
                    "note: {path}: no histogram {} — objective {} skipped",
                    spec.metric, spec.name
                ),
            },
            SloKind::Rate => eprintln!(
                "note: rate objective {} needs per-window data — skipped for {path}",
                spec.name
            ),
        }
    }
    Ok(out)
}

/// Evaluates quantile specs with a `trace_span` against a JSONL trace:
/// the span's `dur_us` durations (in ms) replace the windowed metric,
/// with an exact sorted quantile.
fn slo_check_trace(set: &SloSet, path: &str) -> Result<Vec<SloOutcome>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let wanted: std::collections::BTreeSet<&str> = set
        .slos
        .iter()
        .filter_map(|s| s.trace_span.as_deref())
        .collect();
    let mut durs: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::from_json_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if matches!(ev.kind, EventKind::Span) && wanted.contains(ev.name.as_str()) {
            if let Some(span) = &ev.span {
                durs.entry(ev.name.clone())
                    .or_default()
                    .push(span.dur_us as f64 / 1e3);
            }
        }
    }
    let mut out = Vec::new();
    for spec in &set.slos {
        let Some(span_name) = &spec.trace_span else {
            eprintln!(
                "note: objective {} has no trace_span — skipped for {path}",
                spec.name
            );
            continue;
        };
        let SloKind::Quantile(q) = spec.kind else {
            eprintln!(
                "note: rate objective {} cannot be read from a trace — skipped",
                spec.name
            );
            continue;
        };
        match durs.get_mut(span_name) {
            Some(v) if !v.is_empty() => {
                v.sort_by(f64::total_cmp);
                let idx = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
                out.push(single_outcome(spec, v[idx]));
            }
            _ => eprintln!(
                "note: {path}: no {span_name} spans — objective {} skipped",
                spec.name
            ),
        }
    }
    Ok(out)
}

/// Evaluates step-latency quantile specs against a committed
/// `diag_serve` sweep (`results/serve_latency.json`): every policy's
/// row at the highest swept rate, using the sweep's frozen
/// p50/p95/p99 fields.
fn slo_check_serve_latency(set: &SloSet, path: &str) -> Result<Vec<SloOutcome>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc: serde_json::Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc
        .get("policies")
        .or_else(|| doc.get("rates"))
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{path}: no policies/rates array"))?;
    let max_rate = rows
        .iter()
        .filter_map(|r| r.get("rate").and_then(serde_json::Value::as_u64))
        .max()
        .ok_or_else(|| format!("{path}: rows carry no rate field"))?;
    let mut out = Vec::new();
    for spec in &set.slos {
        let SloKind::Quantile(q) = spec.kind else {
            eprintln!(
                "note: rate objective {} cannot be read from a sweep — skipped",
                spec.name
            );
            continue;
        };
        if spec.metric != "serve.step.latency_ms" {
            eprintln!(
                "note: sweep rows only carry step latency — objective {} skipped",
                spec.name
            );
            continue;
        }
        let field = if q >= 0.99 {
            "batch_p99_ms"
        } else if q >= 0.95 {
            "batch_p95_ms"
        } else {
            "batch_p50_ms"
        };
        for row in rows
            .iter()
            .filter(|r| r.get("rate").and_then(serde_json::Value::as_u64) == Some(max_rate))
        {
            let value = row
                .get(field)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("{path}: sweep row missing {field}"))?;
            let policy = row
                .get("policy")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("shed");
            let mut o = single_outcome(spec, value);
            o.name = format!("{}@{policy}x{max_rate}", spec.name);
            out.push(o);
        }
    }
    Ok(out)
}

/// Offline SLO evaluation over any combination of recorded sources;
/// exits nonzero when any objective is breached anywhere — the ci.sh
/// latency gate.
fn cmd_slo_check(args: &Args) -> Result<(), String> {
    let spec_path = args.get("spec").ok_or("slo-check needs --spec FILE")?;
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    let set = SloSet::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;

    let mut rows: Vec<(&str, SloOutcome)> = Vec::new();
    if let Some(p) = args.get("windows") {
        rows.extend(
            slo_check_windows(&set, p)?
                .into_iter()
                .map(|o| ("windows", o)),
        );
    }
    if let Some(p) = args.get("metrics") {
        rows.extend(
            slo_check_metrics(&set, p)?
                .into_iter()
                .map(|o| ("metrics", o)),
        );
    }
    if let Some(p) = args.get("trace") {
        rows.extend(slo_check_trace(&set, p)?.into_iter().map(|o| ("trace", o)));
    }
    if let Some(p) = args.get("serve-latency") {
        rows.extend(
            slo_check_serve_latency(&set, p)?
                .into_iter()
                .map(|o| ("serve-latency", o)),
        );
    }
    if rows.is_empty() {
        return Err(
            "slo-check evaluated nothing: pass at least one of --windows/--metrics/--trace/\
             --serve-latency with data the spec can judge"
                .into(),
        );
    }
    let mut breaches = 0usize;
    for (source, o) in &rows {
        println!(
            "{source:<14} {:<24} : {} — {} max {:.3}, {}/{} violations (burn {:.2}, \
             allowed {:.2}), worst {:.3}",
            o.name,
            if o.breached { "BREACHED" } else { "ok" },
            o.metric,
            o.max,
            o.violations,
            o.evaluated,
            o.burn_rate,
            o.max_burn_rate,
            o.worst
        );
        breaches += usize::from(o.breached);
    }
    if breaches > 0 {
        return Err(format!("{breaches} SLO objective(s) breached"));
    }
    println!("all SLOs within objectives ({} evaluation(s))", rows.len());
    Ok(())
}

/// Validates a JSONL trace: every line must parse as an [`Event`], span
/// ids must be unique, and every span parent must reference another span
/// in the file. With `--metrics`, additionally reconciles the trace
/// against the snapshot: per-name counter sums must match the snapshot's
/// counters, and per-name span counts — plus any `obs.sampled.*`
/// head-sampling corrections — must match the snapshot's span
/// histograms. With `--windows` (which needs `--metrics`), the window
/// log's fleet totals are reconciled against the cumulative snapshot,
/// and with `--serve-report` additionally against the per-shard
/// `ServeReport` accounting.
fn cmd_trace_validate(args: &Args) -> Result<(), String> {
    let path = args
        .get("trace")
        .ok_or("trace-validate needs --trace FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;

    let mut events: Vec<Event> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::from_json_line(line)
            .map_err(|e| format!("{path}:{}: bad event: {e}", lineno + 1))?;
        events.push(ev);
    }

    let mut span_ids = std::collections::HashSet::new();
    let mut counter_sums: std::collections::BTreeMap<String, u64> = Default::default();
    let mut span_counts: std::collections::BTreeMap<String, u64> = Default::default();
    let (mut n_spans, mut n_counts, mut n_gauges) = (0u64, 0u64, 0u64);
    for ev in &events {
        match ev.kind {
            EventKind::Span => {
                n_spans += 1;
                let span = ev.span.as_ref().ok_or("span event without span data")?;
                if !span_ids.insert(span.id) {
                    return Err(format!("duplicate span id {} in {path}", span.id));
                }
                *span_counts.entry(ev.name.clone()).or_default() += 1;
            }
            EventKind::Count => {
                n_counts += 1;
                *counter_sums.entry(ev.name.clone()).or_default() += ev.value as u64;
            }
            EventKind::Gauge => n_gauges += 1,
        }
    }
    // Head sampling keeps the first N spans *per name*, so a surviving
    // child may legitimately reference a sampled-away parent; the
    // structural check only holds for unsampled traces.
    let head_sampled = counter_sums
        .keys()
        .any(|n| n.starts_with(SAMPLED_SPAN_PREFIX));
    if !head_sampled {
        for ev in &events {
            if let Some(span) = &ev.span {
                if let Some(parent) = span.parent {
                    if !span_ids.contains(&parent) {
                        return Err(format!(
                            "span {} ({}) references unknown parent {parent}",
                            span.id, ev.name
                        ));
                    }
                }
            }
        }
    }

    let snapshot = match args.get("metrics") {
        Some(mpath) => {
            let mtext = std::fs::read_to_string(mpath).map_err(|e| format!("read {mpath}: {e}"))?;
            Some(TelemetrySnapshot::from_json(&mtext).map_err(|e| format!("{mpath}: {e}"))?)
        }
        None => None,
    };
    if let Some(snap) = &snapshot {
        for (name, sum) in &counter_sums {
            if name.starts_with(SAMPLED_SPAN_PREFIX) {
                // Head-sampling corrections exist only in the trace; the
                // in-process registry never sees them.
                continue;
            }
            let got = snap.counters.get(name).copied().unwrap_or(0);
            if got != *sum {
                return Err(format!(
                    "counter {name}: trace sums to {sum}, snapshot says {got}"
                ));
            }
        }
        // Union of span names seen live and names reconstructed from
        // sampling corrections — a fully sampled-out span leaves only
        // its `obs.sampled.<name>` counter behind.
        let mut span_names: std::collections::BTreeSet<String> =
            span_counts.keys().cloned().collect();
        for name in counter_sums.keys() {
            if let Some(stripped) = name.strip_prefix(SAMPLED_SPAN_PREFIX) {
                span_names.insert(stripped.to_string());
            }
        }
        for name in &span_names {
            let in_trace = span_counts.get(name).copied().unwrap_or(0);
            let corrected = counter_sums
                .get(&format!("{SAMPLED_SPAN_PREFIX}{name}"))
                .copied()
                .unwrap_or(0);
            let got = snap.histograms.get(name).map_or(0, |h| h.count);
            if got != in_trace + corrected {
                return Err(format!(
                    "span {name}: {in_trace} events in trace + {corrected} sampled out, \
                     {got} in snapshot histogram"
                ));
            }
        }
    }

    if args.get("serve-report").is_some() && args.get("windows").is_none() {
        return Err("--serve-report needs --windows".into());
    }
    if let Some(wpath) = args.get("windows") {
        let snap = snapshot
            .as_ref()
            .ok_or("--windows needs --metrics to reconcile against")?;
        let n_windows = validate_windows(args, wpath, snap)?;
        println!("windows OK: {n_windows} sealed windows reconciled");
    }

    println!(
        "trace OK: {} events ({n_spans} spans, {n_counts} counts, {n_gauges} gauges)",
        events.len()
    );
    Ok(())
}

/// Reconciles a `--windows-log` JSONL file against the cumulative
/// snapshot (every windowed counter and histogram must sum to its
/// cumulative twin) and, with `--serve-report`, against the per-shard
/// report accounting. Returns the number of sealed windows read.
fn validate_windows(args: &Args, wpath: &str, snap: &TelemetrySnapshot) -> Result<usize, String> {
    let wtext = std::fs::read_to_string(wpath).map_err(|e| format!("read {wpath}: {e}"))?;
    let mut scopes: BTreeMap<String, ScopeCell> = BTreeMap::new();
    let mut n_windows = 0usize;
    for (lineno, line) in wtext.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let w =
            WindowSnapshot::from_json(line).map_err(|e| format!("{wpath}:{}: {e}", lineno + 1))?;
        for (scope, cell) in &w.scopes {
            scopes
                .entry(scope.clone())
                .or_default()
                .merge_later_window(cell);
        }
        n_windows += 1;
    }
    if n_windows == 0 {
        return Err(format!("{wpath}: no sealed windows"));
    }
    let mut fleet = ScopeCell::default();
    for cell in scopes.values() {
        fleet.merge_scope(cell);
    }
    for (name, sum) in &fleet.counters {
        let got = snap.counters.get(name).copied().unwrap_or(0);
        if got != *sum {
            return Err(format!(
                "windowed counter {name}: window log sums to {sum}, snapshot says {got}"
            ));
        }
    }
    for (name, h) in &fleet.histograms {
        let got = snap.histograms.get(name).map_or(0, |s| s.count);
        if got != h.count() {
            return Err(format!(
                "windowed histogram {name}: {} observations in window log, {got} in snapshot",
                h.count()
            ));
        }
    }

    if let Some(rpath) = args.get("serve-report") {
        let rtext = std::fs::read_to_string(rpath).map_err(|e| format!("read {rpath}: {e}"))?;
        let report: ServeReport =
            serde_json::from_str(&rtext).map_err(|e| format!("{rpath}: {e}"))?;
        for s in &report.shards {
            let cell = scopes
                .get(&s.name)
                .ok_or_else(|| format!("{rpath}: shard {} absent from window log", s.name))?;
            let counter = |n: &str| cell.counters.get(n).copied().unwrap_or(0);
            let checks = [
                (
                    "serve.submitted",
                    (s.counts.submitted_tasks + s.counts.submitted_reports) as u64,
                ),
                ("serve.overload.degraded", s.counts.degraded() as u64),
                ("serve.overload.retried", s.counts.retried as u64),
                ("serve.cache.hit", s.cache.hits),
                ("serve.cache.miss", s.cache.misses),
                ("serve.cache.invalidate", s.cache.invalidations),
                ("serve.crash.restore", s.crashes),
            ];
            for (name, reported) in checks {
                if counter(name) != reported {
                    return Err(format!(
                        "shard {}: {name}: window log sums to {}, report says {reported}",
                        s.name,
                        counter(name)
                    ));
                }
            }
            // Backpressure flushes still-queued retries into the shed
            // count after the last emitted window, so the report may
            // exceed the log here — never the other way round.
            if counter("serve.shed") > s.counts.shed() as u64 {
                return Err(format!(
                    "shard {}: serve.shed: window log sums to {}, report says only {}",
                    s.name,
                    counter("serve.shed"),
                    s.counts.shed()
                ));
            }
            if s.counts.offered()
                != s.counts.submitted_tasks
                    + s.counts.submitted_reports
                    + s.counts.shed()
                    + s.counts.degraded()
            {
                return Err(format!(
                    "shard {}: offered != submitted + shed + degraded",
                    s.name
                ));
            }
        }
    }
    Ok(n_windows)
}

//! Renders the figure experiments' JSON rows into SVG charts.
//!
//! Reads every `fig*.json` in the results directory (`TAMP_OUT`, default
//! `results/`) and writes one SVG per metric — the four panels of the
//! paper's Figs. 6–11 — next to it.
//!
//! ```sh
//! cargo run --release -p tamp-bench --bin render_charts
//! ```

use std::collections::BTreeMap;
use tamp_bench::out_dir;
use tamp_bench::svg::{line_chart, Series};

const METRICS: [(&str, &str); 4] = [
    ("completion", "task completion ratio"),
    ("rejection", "rejection ratio"),
    ("cost_km", "worker cost (km)"),
    ("runtime_s", "algorithm runtime (s)"),
];

fn main() -> std::io::Result<()> {
    let dir = out_dir();
    let mut rendered = 0;
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!(
                "cannot read {} ({e}); run the exp_fig* binaries first",
                dir.display()
            );
            return Ok(());
        }
    };
    for entry in entries {
        let path = entry?.path();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if !name.starts_with("fig") || path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let v: serde_json::Value = serde_json::from_str(&text).map_err(std::io::Error::other)?;
        let rows = match v["rows"].as_array() {
            Some(r) if !r.is_empty() => r.clone(),
            _ => continue,
        };
        let param = rows[0]["param"].as_str().unwrap_or("x").to_string();

        for (key, label) in METRICS {
            // Group rows into one series per algorithm, preserving first-seen order.
            let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
            for r in &rows {
                let algo = r["algorithm"].as_str().unwrap_or("?").to_string();
                let x = r["x"].as_f64().unwrap_or(0.0);
                let y = r[key].as_f64().unwrap_or(0.0);
                series.entry(algo).or_default().push((x, y));
            }
            let mut out: Vec<Series> = series
                .into_iter()
                .map(|(name, mut points)| {
                    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                    Series { name, points }
                })
                .collect();
            // Keep the paper's legend order where possible.
            let order = ["UB", "LB", "PPI", "PPI-loss", "KM", "KM-loss", "GGPSO"];
            out.sort_by_key(|s| {
                order
                    .iter()
                    .position(|&o| o == s.name)
                    .unwrap_or(usize::MAX)
            });
            let svg = line_chart(&format!("{name}: {label}"), &param, label, &out);
            let out_path = dir.join(format!("{name}_{key}.svg"));
            std::fs::write(&out_path, svg)?;
            rendered += 1;
        }
        println!("rendered {name} → 4 SVG panels");
    }
    println!("{rendered} charts written to {}", dir.display());
    Ok(())
}

//! The timestamped events a shard's submission queue carries, and the
//! simulated source that replays a [`Workload`] as such a stream.
//!
//! In a deployment the stream would be fed by requesters publishing
//! tasks and workers reporting locations; in this repo the same
//! interface is driven by replaying a generated test day, which is what
//! makes serve runs directly comparable (byte for byte) to the one-shot
//! `run_assignment` over the same workload.
//!
//! ## Event ordering
//!
//! The host-level submission order is the explicit total order
//! **(event time, shard, submission index)**: shards are independent,
//! so cross-shard order only needs the first two components, and within
//! a shard equal-timestamp events are broken by *submission index* —
//! the position at which the event entered the stream (all tasks in
//! workload order, then worker 0's reports, worker 1's reports, …).
//! [`EventStream::from_workload`] sorts by that pair explicitly rather
//! than relying on sort stability, so the tie-break is part of the
//! contract (tested below) and replaying the stream reconstructs
//! exactly what the one-shot engine reads from the workload directly.

use serde::{Deserialize, Serialize};
use tamp_core::{SpatialTask, TimedPoint};
use tamp_sim::Workload;

/// One submission: either a requester publishing a task or a worker
/// reporting a location sample. Serializable so queued-but-unprocessed
/// events survive a shard snapshot verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardEvent {
    /// A task published at its release time.
    Task(SpatialTask),
    /// A periodic location report from worker `worker` (index into the
    /// shard workload's worker list).
    Report {
        /// Index of the reporting worker.
        worker: usize,
        /// The reported location sample.
        point: TimedPoint,
    },
}

impl ShardEvent {
    /// When the event happens, minutes since the day start (a task's
    /// release time; a report's sample time).
    pub fn time(&self) -> f64 {
        match self {
            ShardEvent::Task(task) => task.release.as_f64(),
            ShardEvent::Report { point, .. } => point.time.as_f64(),
        }
    }
}

/// A time-ordered replay of one workload's test day as submission
/// events.
#[derive(Debug, Clone)]
pub struct EventStream {
    events: Vec<ShardEvent>,
    next: usize,
}

impl EventStream {
    /// Merges the workload's tasks (at their release times) and every
    /// worker's location reports (the real routine's samples) into one
    /// stream, sorted by the total order `(time, submission index)` —
    /// ties keep the workload's task order and each worker's report
    /// order (see the module docs).
    pub fn from_workload(workload: &Workload) -> Self {
        let mut events: Vec<ShardEvent> = workload
            .tasks
            .iter()
            .copied()
            .map(ShardEvent::Task)
            .collect();
        for (wi, sw) in workload.workers.iter().enumerate() {
            events.extend(
                sw.worker
                    .real_routine
                    .points()
                    .iter()
                    .map(|&point| ShardEvent::Report { worker: wi, point }),
            );
        }
        // Sort by the explicit (time, submission index) key: total_cmp
        // gives a total order on the (finite) times, and the index
        // tie-break makes equal-timestamp ordering part of the contract
        // instead of an artifact of sort stability.
        let mut indexed: Vec<(usize, ShardEvent)> = events.into_iter().enumerate().collect();
        indexed.sort_by(|(ia, a), (ib, b)| a.time().total_cmp(&b.time()).then(ia.cmp(ib)));
        Self {
            events: indexed.into_iter().map(|(_, e)| e).collect(),
            next: 0,
        }
    }

    /// Hands out (and consumes) every not-yet-taken event with
    /// `time < t`, preserving stream order.
    pub fn take_until(&mut self, t: f64) -> &[ShardEvent] {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].time() < t {
            self.next += 1;
        }
        &self.events[start..self.next]
    }

    /// How many events have been taken so far (the replay cursor, used
    /// by shard snapshots).
    pub fn position(&self) -> usize {
        self.next
    }

    /// Moves the replay cursor to `taken` events consumed (snapshot
    /// restore). Returns `false` (and leaves the cursor) if `taken`
    /// exceeds the stream length.
    pub fn seek(&mut self, taken: usize) -> bool {
        if taken > self.events.len() {
            return false;
        }
        self.next = taken;
        true
    }

    /// Events not yet taken.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Total events in the stream (taken or not).
    pub fn total(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::{Minutes, Point};
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn tiny() -> Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 5).build()
    }

    #[test]
    fn stream_covers_tasks_and_reports_in_time_order() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let n_reports: usize = w
            .workers
            .iter()
            .map(|sw| sw.worker.real_routine.points().len())
            .sum();
        assert_eq!(s.total(), w.tasks.len() + n_reports);
        let all = s.take_until(f64::INFINITY).to_vec();
        assert_eq!(all.len(), s.total());
        assert_eq!(s.remaining(), 0);
        for pair in all.windows(2) {
            assert!(pair[0].time() <= pair[1].time(), "stream must be sorted");
        }
    }

    #[test]
    fn take_until_is_exclusive_and_resumes() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let cut = 60.0;
        let first: Vec<_> = s.take_until(cut).to_vec();
        assert!(first.iter().all(|e| e.time() < cut));
        let rest: Vec<_> = s.take_until(f64::INFINITY).to_vec();
        assert!(rest.iter().all(|e| e.time() >= cut));
        assert_eq!(first.len() + rest.len(), s.total());
    }

    #[test]
    fn ties_preserve_per_worker_report_order() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let all = s.take_until(f64::INFINITY);
        // Per worker, the replayed reports must equal the routine
        // verbatim — the (time, submission index) order may not reorder
        // equal-time samples of one worker.
        for (wi, sw) in w.workers.iter().enumerate() {
            let replayed: Vec<TimedPoint> = all
                .iter()
                .filter_map(|e| match e {
                    ShardEvent::Report { worker, point } if *worker == wi => Some(*point),
                    _ => None,
                })
                .collect();
            assert_eq!(replayed, sw.worker.real_routine.points().to_vec());
        }
    }

    #[test]
    fn equal_timestamps_follow_submission_index_order() {
        // Hand-build a workload-shaped tie: every event at t = 10.0.
        // The contract is tasks first (workload order), then worker 0's
        // reports, then worker 1's — the submission index order.
        let mut w = tiny();
        w.tasks.truncate(2);
        for (i, task) in w.tasks.iter_mut().enumerate() {
            task.release = Minutes::new(10.0);
            // Distinguish the two tasks by location.
            task.location = Point::new(i as f64, 0.0);
        }
        w.workers.truncate(2);
        for (wi, sw) in w.workers.iter_mut().enumerate() {
            let pts = vec![TimedPoint::new(
                Point::new(100.0 + wi as f64, 0.0),
                Minutes::new(10.0),
            )];
            sw.worker.real_routine = tamp_core::Routine::from_points(pts);
        }
        let mut s = EventStream::from_workload(&w);
        let all = s.take_until(f64::INFINITY).to_vec();
        assert_eq!(all.len(), 4);
        assert!(matches!(all[0], ShardEvent::Task(t) if t.location.x == 0.0));
        assert!(matches!(all[1], ShardEvent::Task(t) if t.location.x == 1.0));
        assert!(matches!(all[2], ShardEvent::Report { worker: 0, .. }));
        assert!(matches!(all[3], ShardEvent::Report { worker: 1, .. }));
    }

    #[test]
    fn seek_restores_the_replay_cursor() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let first: Vec<_> = s.take_until(60.0).to_vec();
        let pos = s.position();
        assert_eq!(pos, first.len());
        let rest: Vec<_> = s.take_until(f64::INFINITY).to_vec();

        let mut replayed = EventStream::from_workload(&w);
        assert!(replayed.seek(pos), "in-range seek succeeds");
        assert_eq!(replayed.position(), pos);
        assert_eq!(replayed.take_until(f64::INFINITY).to_vec(), rest);

        assert!(!replayed.seek(s.total() + 1), "past-the-end seek refused");
        assert_eq!(replayed.position(), s.total(), "failed seek leaves cursor");
    }

    #[test]
    fn serde_round_trips_events() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let all = s.take_until(f64::INFINITY).to_vec();
        let json = serde_json::to_string(&all).unwrap();
        let back: Vec<ShardEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, all);
    }
}

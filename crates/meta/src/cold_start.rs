//! Cold-start initialisation for newly arrived workers.
//!
//! Section III-B: "we proceed with a depth-first postorder traversal of
//! the learning task tree, wherein we calculate the average similarity
//! between [the new task] and the learning tasks encompassed within each
//! node. Then, we initialize the mobility prediction model ... with the
//! parameters from the most similar node and conduct model training based
//! on this initialization."
//!
//! New workers carry little history, so the similarity used here is the
//! distribution similarity `Sim_d` (computable from raw samples alone —
//! no gradient path, no POI record needed), combined with `Sim_s` when
//! the newcomer has POI data.

use crate::learning_task::LearningTask;
use crate::maml::adapt;
use crate::similarity::{sim_distribution, sim_spatial, DEFAULT_BANDWIDTH_KM};
use crate::tree::{LearningTaskTree, NodeId};
use rand::Rng;
use tamp_nn::{Loss, Seq2Seq};

// `DeltaWeights` is mechanically defined next to the kernels in
// `tamp-nn` (the batched rollout applies deltas inside the GEMM loop),
// but it is re-exported here because the *reason* per-worker models are
// small sparse overrides is this module's meta-learning structure: every
// worker adapts from its GTMC cluster head, so `(head, delta)` is the
// natural storage form and a brand-new worker is just `(head,
// cold_start_delta(..))`.
pub use tamp_nn::DeltaWeights;

/// Average similarity between a new task and a node's member tasks.
fn node_similarity(node_tasks: &[&LearningTask], new_task: &LearningTask) -> f64 {
    if node_tasks.is_empty() {
        return 0.0;
    }
    let total: f64 = node_tasks
        .iter()
        .map(|t| {
            let d = sim_distribution(&t.sample_points, &new_task.sample_points);
            if t.poi_seq.is_empty() || new_task.poi_seq.is_empty() {
                d
            } else {
                0.5 * d + 0.5 * sim_spatial(&t.poi_seq, &new_task.poi_seq, DEFAULT_BANDWIDTH_KM)
            }
        })
        .sum();
    total / node_tasks.len() as f64
}

/// Post-order traversal choosing the node whose members are on average
/// most similar to the new task. Ties favour the first (deepest) match,
/// so specialised leaves win over the generic root.
pub fn best_init_node(
    tree: &LearningTaskTree,
    tasks: &[LearningTask],
    new_task: &LearningTask,
) -> NodeId {
    let mut best = tree.root();
    let mut best_sim = f64::NEG_INFINITY;
    for id in tree.post_order() {
        let members: Vec<&LearningTask> = tree
            .node(id)
            .members
            .iter()
            .filter_map(|&m| tasks.get(m))
            .collect();
        let s = node_similarity(&members, new_task);
        if s > best_sim {
            best_sim = s;
            best = id;
        }
    }
    best
}

/// The weight-store entry for a worker that has never been observed: its
/// model *is* the cluster-head prior, so the delta overrides nothing.
/// Serving cold-start is therefore a head lookup plus this empty delta —
/// no training, no parameter copy (`n_params` is the head's parameter
/// count). The paper's own meta-learning story (§ III-B: initialise from
/// the most similar tree node) supplies the head choice; see
/// [`best_init_node`].
pub fn cold_start_delta(n_params: usize) -> DeltaWeights {
    DeltaWeights::empty(n_params)
}

/// Deduplicates per-worker initialisation vectors into distinct cluster
/// heads: returns `(heads, head_of)` where `head_of[i]` indexes the head
/// worker `i` was initialised from. Vectors are compared *bitwise*, so
/// two workers share a head only when their inits are exactly the
/// parameters of the same cluster prior — the invariant the base+delta
/// weight store ([`tamp_nn::DeltaWeights`]) relies on. Head order follows
/// first appearance, keeping the mapping deterministic.
pub fn dedup_heads(inits: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut heads: Vec<Vec<f64>> = Vec::new();
    let mut keys: Vec<Vec<u64>> = Vec::new();
    let mut head_of = Vec::with_capacity(inits.len());
    for init in inits {
        let key: Vec<u64> = init.iter().map(|v| v.to_bits()).collect();
        let idx = match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                keys.push(key);
                heads.push(init.clone());
                heads.len() - 1
            }
        };
        head_of.push(idx);
    }
    (heads, head_of)
}

/// Full cold-start path: pick the most similar node, initialise from its
/// `θ`, adapt on whatever support the newcomer has. Returns the adapted
/// model and the chosen node.
#[allow(clippy::too_many_arguments)]
pub fn adapt_new_worker(
    tree: &LearningTaskTree,
    tasks: &[LearningTask],
    new_task: &LearningTask,
    template: &Seq2Seq,
    loss: &dyn Loss,
    steps: usize,
    beta: f64,
    batch: usize,
    rng: &mut impl Rng,
) -> (Seq2Seq, NodeId) {
    let node = best_init_node(tree, tasks, new_task);
    let theta = &tree.node(node).theta;
    let model = adapt(theta, new_task, template, loss, steps, beta, batch, rng);
    (model, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;
    use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
    use tamp_nn::{MseLoss, Seq2SeqConfig};

    fn corner_task(id: u64, cx: f64, cy: f64, days: usize) -> LearningTask {
        let routines: Vec<Routine> = (0..days)
            .map(|d| {
                Routine::from_sampled(
                    (0..12)
                        .map(|i| Point::new(cx + (i % 4) as f64 * 0.2, cy + (i % 2) as f64 * 0.2)),
                    Minutes::new(d as f64 * 1440.0),
                    Minutes::new(10.0),
                )
            })
            .collect();
        let mut rng = rng_for(id, 7);
        LearningTask::from_history(
            WorkerId(id),
            &routines,
            vec![],
            &Grid::PAPER,
            2,
            1,
            0.7,
            false,
            &mut rng,
        )
    }

    /// Tree: root {0,1,2,3}; leaf A {0,1} southwest, leaf B {2,3}
    /// northeast with distinct thetas.
    fn setup() -> (LearningTaskTree, Vec<LearningTask>) {
        let tasks = vec![
            corner_task(0, 2.0, 2.0, 2),
            corner_task(1, 2.5, 2.5, 2),
            corner_task(2, 16.0, 8.0, 2),
            corner_task(3, 16.5, 7.5, 2),
        ];
        let mut tree = LearningTaskTree::with_root(vec![0, 1, 2, 3], vec![0.0; 8]);
        let a = tree.add_child(0, vec![0, 1]);
        let b = tree.add_child(0, vec![2, 3]);
        tree.node_mut(a).theta = vec![1.0; 8];
        tree.node_mut(b).theta = vec![2.0; 8];
        (tree, tasks)
    }

    #[test]
    fn newcomer_lands_on_matching_leaf() {
        let (tree, tasks) = setup();
        let sw_newcomer = corner_task(10, 2.2, 2.1, 1);
        let ne_newcomer = corner_task(11, 16.2, 7.8, 1);
        let a = best_init_node(&tree, &tasks, &sw_newcomer);
        let b = best_init_node(&tree, &tasks, &ne_newcomer);
        assert_eq!(tree.node(a).theta, vec![1.0; 8], "southwest leaf");
        assert_eq!(tree.node(b).theta, vec![2.0; 8], "northeast leaf");
    }

    #[test]
    fn adapt_new_worker_returns_trained_model() {
        let tasks = vec![corner_task(0, 2.0, 2.0, 2), corner_task(1, 2.5, 2.5, 2)];
        let mut rng = rng_for(9, 7);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let tree = LearningTaskTree::with_root(vec![0, 1], template.params());
        let newcomer = corner_task(12, 2.1, 2.2, 1);
        let (model, node) = adapt_new_worker(
            &tree, &tasks, &newcomer, &template, &MseLoss, 3, 0.1, 8, &mut rng,
        );
        assert_eq!(node, tree.root());
        assert_ne!(model.params(), template.params(), "adaptation happened");
    }

    #[test]
    fn cold_start_delta_is_the_head_prior() {
        let head = vec![0.5, -1.25, 3.0];
        let d = cold_start_delta(head.len());
        assert!(d.is_empty());
        assert_eq!(d.resident_bytes(), 0);
        let mut params = Vec::new();
        d.apply(&head, &mut params);
        assert_eq!(params, head);
    }

    #[test]
    fn dedup_heads_groups_bitwise_equal_inits() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, f64::from_bits(3.0f64.to_bits() + 1)];
        let inits = vec![a.clone(), b.clone(), a.clone(), a.clone(), b.clone()];
        let (heads, head_of) = dedup_heads(&inits);
        assert_eq!(heads, vec![a, b]);
        assert_eq!(head_of, vec![0, 1, 0, 0, 1]);
        let (none, empty) = dedup_heads(&[]);
        assert!(none.is_empty() && empty.is_empty());
    }

    #[test]
    fn empty_members_nodes_never_win() {
        let tasks = vec![corner_task(0, 2.0, 2.0, 2)];
        let mut tree = LearningTaskTree::with_root(vec![0], vec![0.5; 4]);
        let empty = tree.add_child(0, vec![]);
        let _ = empty;
        let newcomer = corner_task(13, 2.2, 2.0, 1);
        let best = best_init_node(&tree, &tasks, &newcomer);
        assert_eq!(best, tree.root());
    }
}

//! Micro-bench: the KM (Hungarian) solver vs greedy matching across
//! bipartite-graph sizes — the inner loop of every assignment algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;
use tamp_assign::hungarian::{max_weight_matching, WeightedEdge};
use tamp_core::rng::rng_for;

fn dense_edges(n: usize, m: usize, seed: u64) -> Vec<WeightedEdge> {
    let mut rng = rng_for(seed, 0);
    let mut edges = Vec::with_capacity(n * m);
    for l in 0..n {
        for r in 0..m {
            edges.push(WeightedEdge::new(l, r, rng.gen_range(0.1..10.0)));
        }
    }
    edges
}

fn greedy(n: usize, m: usize, edges: &[WeightedEdge]) -> usize {
    let mut sorted: Vec<&WeightedEdge> = edges.iter().collect();
    sorted.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
    let mut ul = vec![false; n];
    let mut ur = vec![false; m];
    let mut count = 0;
    for e in sorted {
        if !ul[e.left] && !ur[e.right] {
            ul[e.left] = true;
            ur[e.right] = true;
            count += 1;
        }
    }
    count
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for &n in &[8usize, 32, 64, 128] {
        let edges = dense_edges(n, n, n as u64);
        group.bench_with_input(BenchmarkId::new("km", n), &n, |b, &n| {
            b.iter(|| black_box(max_weight_matching(n, n, black_box(&edges))))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, &n| {
            b.iter(|| black_box(greedy(n, n, black_box(&edges))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

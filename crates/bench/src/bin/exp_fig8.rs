//! Regenerates **Fig. 8** of the paper: effect of task valid time (workload 1).

use tamp_bench::{
    default_engine, default_training, out_dir, print_assignment, scale_from_env, seed_from_env,
};
use tamp_platform::experiments::{save_json, valid_time_sweep, SweepConfig};
use tamp_sim::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Fig. 8: effect of task valid time (workload 1, {} workers, seed {seed})",
        scale.n_workers
    );
    let cfg = SweepConfig {
        kind: WorkloadKind::PortoDidi,
        scale,
        seed,
        training: default_training(seed),
        engine: default_engine(seed),
    };
    let rows = valid_time_sweep(&cfg, &[1.0, 2.0, 3.0, 4.0, 5.0]);
    print_assignment(&rows);
    save_json(
        &out_dir().join("fig8.json"),
        "fig8_valid_time_sweep_workload1",
        &rows,
    )
    .expect("write rows");
}

//! Spatial tasks (Definition 1).
//!
//! A spatial task `τ = (l, t)` asks some worker to physically reach the
//! target location `τ.l` before the deadline `τ.t`. Tasks arrive at the
//! platform dynamically; we additionally track the release (arrival) time
//! so the batch engine can window them, exactly as the paper's batch-based
//! assignment does.

use crate::geometry::Point;
use crate::time::Minutes;
use serde::{Deserialize, Serialize};

/// Opaque identifier of a spatial task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A spatial task `τ = (l, t)` (Definition 1) with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialTask {
    /// Unique task identifier.
    pub id: TaskId,
    /// Target location `τ.l` the assigned worker must reach.
    pub location: Point,
    /// Time at which the requester published the task.
    pub release: Minutes,
    /// Deadline `τ.t`: the task is completed only if a worker reaches
    /// `location` strictly before this instant.
    pub deadline: Minutes,
}

impl SpatialTask {
    /// Creates a task; panics in debug builds if the deadline precedes the
    /// release time.
    pub fn new(id: TaskId, location: Point, release: Minutes, deadline: Minutes) -> Self {
        debug_assert!(
            deadline.as_f64() >= release.as_f64(),
            "task deadline before release"
        );
        Self {
            id,
            location,
            release,
            deadline,
        }
    }

    /// Remaining validity at time `now`, in minutes (negative once expired).
    #[inline]
    pub fn remaining(&self, now: Minutes) -> f64 {
        self.deadline.as_f64() - now.as_f64()
    }

    /// Whether the task is still assignable at `now` (released and not
    /// expired).
    #[inline]
    pub fn is_live(&self, now: Minutes) -> bool {
        now.as_f64() >= self.release.as_f64() && now.as_f64() < self.deadline.as_f64()
    }

    /// The paper's `dᵗ = sp · (τ.t − t_c)` reachability radius (Lemma 2):
    /// how far a worker moving at `speed_km_per_min` can travel before the
    /// deadline, measured from time `now`.
    #[inline]
    pub fn reach_radius(&self, now: Minutes, speed_km_per_min: f64) -> f64 {
        (self.remaining(now) * speed_km_per_min).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> SpatialTask {
        SpatialTask::new(
            TaskId(7),
            Point::new(1.0, 2.0),
            Minutes::new(0.0),
            Minutes::new(30.0),
        )
    }

    #[test]
    fn liveness_window() {
        let t = task();
        assert!(!t.is_live(Minutes::new(-1.0)));
        assert!(t.is_live(Minutes::new(0.0)));
        assert!(t.is_live(Minutes::new(29.9)));
        assert!(!t.is_live(Minutes::new(30.0)));
    }

    #[test]
    fn remaining_and_reach() {
        let t = task();
        assert_eq!(t.remaining(Minutes::new(10.0)), 20.0);
        // 0.3 km/min for 20 minutes → 6 km.
        assert!((t.reach_radius(Minutes::new(10.0), 0.3) - 6.0).abs() < 1e-12);
        // After expiry the radius clamps to zero.
        assert_eq!(t.reach_radius(Minutes::new(40.0), 0.3), 0.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TaskId(3).to_string(), "τ3");
    }
}

//! Micro-bench: per-pair cost of the three clustering factors — the
//! dominant cost of building GTMC's similarity matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;
use tamp_core::rng::rng_for;
use tamp_core::{Poi, PoiCategory, Point};
use tamp_meta::similarity::{sim_distribution, sim_learning_path, sim_spatial};
use tamp_meta::sinkhorn::{sinkhorn_distance, SinkhornConfig};
use tamp_meta::wasserstein::{strided_subsample, w1_distance_capped};

fn cloud(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = rng_for(seed, 0);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    let a = cloud(256, 1);
    let b = cloud(256, 2);
    for &cap in &[16usize, 32, 48, 64] {
        group.bench_with_input(
            BenchmarkId::new("sim_d_w1_exact", cap),
            &cap,
            |bch, &cap| {
                bch.iter(|| black_box(w1_distance_capped(black_box(&a), black_box(&b), cap)))
            },
        );
        // Sinkhorn on the same subsample sizes: the O(n²·iters) scalable
        // alternative; the crossover vs the exact O(n³) solver shows when
        // it pays off.
        let sa = strided_subsample(&a, cap);
        let sb = strided_subsample(&b, cap);
        group.bench_with_input(BenchmarkId::new("sim_d_sinkhorn", cap), &cap, |bch, _| {
            let cfg = SinkhornConfig::default();
            bch.iter(|| black_box(sinkhorn_distance(black_box(&sa), black_box(&sb), &cfg)))
        });
    }
    group.bench_function("sim_d", |bch| {
        bch.iter(|| black_box(sim_distribution(black_box(&a), black_box(&b))))
    });

    let pois_a: Vec<Poi> = cloud(8, 3)
        .into_iter()
        .map(|p| Poi::new(p, PoiCategory::Food))
        .collect();
    let pois_b: Vec<Poi> = cloud(8, 4)
        .into_iter()
        .map(|p| Poi::new(p, PoiCategory::Office))
        .collect();
    group.bench_function("sim_s", |bch| {
        bch.iter(|| black_box(sim_spatial(black_box(&pois_a), black_box(&pois_b), 1.5)))
    });

    let mut rng = rng_for(5, 0);
    let path_a: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..2500).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let path_b: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..2500).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    group.bench_function("sim_l", |bch| {
        bch.iter(|| black_box(sim_learning_path(black_box(&path_a), black_box(&path_b))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

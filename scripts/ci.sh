#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
#
# Everything runs --offline: the workspace's dependency set is small and
# pinned (see CONTRIBUTING.md), and CI must not depend on a registry
# being reachable. Run `cargo fetch` once on a connected machine first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== doc link check (intra-repo markdown links must resolve)"
python3 - <<'EOF'
import os, re, sys

files = [f for f in ("README.md", "DESIGN.md", "ROADMAP.md", "EXPERIMENTS.md",
                     "CONTRIBUTING.md", "CHANGES.md") if os.path.exists(f)]
files += sorted(os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md"))
link = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
bad = []
for path in files:
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as fh:
        for n, line in enumerate(fh, 1):
            for target in link.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if rel and not os.path.exists(os.path.normpath(os.path.join(base, rel))):
                    bad.append(f"{path}:{n}: dead link -> {target}")
for b in bad:
    print(b, file=sys.stderr)
if bad:
    sys.exit(1)
print(f"checked {len(files)} markdown files, all intra-repo links resolve")
EOF

echo "== cargo clippy serve+platform (deny warnings, crash-safety surfaces first)"
cargo clippy -p tamp-serve -p tamp-platform --all-targets --offline -- -D warnings

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + test"
cargo build --release --workspace --offline
cargo test --workspace --offline -q

echo "== traced smoke run (telemetry schema + reconciliation)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --release -p tamp-cli --offline -q -- simulate \
    --kind porto --scale tiny --seed 7 --algo ppi \
    --trace "$SMOKE_DIR/trace.jsonl" --metrics "$SMOKE_DIR/telemetry.json" >/dev/null
cargo run --release -p tamp-cli --offline -q -- trace-validate \
    --trace "$SMOKE_DIR/trace.jsonl" --metrics "$SMOKE_DIR/telemetry.json"

echo "== indexed vs naive smoke comparison (must be identical)"
# The spatial index is a pure prefilter: --no-index must reproduce the
# exact same simulation outcome. Compare the deterministic result lines
# of the text report (timings naturally differ).
for algo in ppi km; do
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed 7 --algo "$algo" \
        >"$SMOKE_DIR/$algo.indexed.txt"
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed 7 --algo "$algo" --no-index \
        >"$SMOKE_DIR/$algo.naive.txt"
    if ! diff <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/$algo.indexed.txt") \
              <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/$algo.naive.txt"); then
        echo "FAIL: --no-index changed the $algo simulation outcome" >&2
        exit 1
    fi
done

echo "== auction vs exact solver smoke comparison (must be identical)"
# The forward-auction backend must reproduce the exact Hungarian
# backend's end-to-end simulation outcome (unique optima under
# continuous inverse-distance weights; DESIGN.md solver backends).
for algo in ppi km; do
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed 7 --algo "$algo" --solver exact \
        >"$SMOKE_DIR/$algo.exact.txt"
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed 7 --algo "$algo" --solver auction \
        >"$SMOKE_DIR/$algo.auction.txt"
    if ! diff <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/$algo.exact.txt") \
              <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/$algo.auction.txt"); then
        echo "FAIL: --solver auction changed the $algo simulation outcome" >&2
        exit 1
    fi
done

echo "== diag_scale smoke (auction equivalence + sparse memory bound)"
# 10k-worker hotspot city: asserts exact-vs-auction equivalence per
# repeat, the auction's peak sparse bytes under the dense estimate, and
# warm-started windows saving bids. Writes nothing.
cargo run --release -p tamp-bench --offline -q --bin diag_scale -- --smoke >/dev/null

echo "== train-threads determinism smoke (1 vs 4 must be identical)"
# Parallel meta-training uses fixed-order reduction, so predictor
# quality metrics must be byte-identical at any thread count. Only the
# wall-clock line may differ.
for t in 1 4; do
    cargo run --release -p tamp-cli --offline -q -- predict \
        --kind porto --scale tiny --seed 7 --train-threads "$t" \
        >"$SMOKE_DIR/predict.t$t.txt"
done
if ! diff <(grep -v '^training time' "$SMOKE_DIR/predict.t1.txt") \
          <(grep -v '^training time' "$SMOKE_DIR/predict.t4.txt"); then
    echo "FAIL: --train-threads changed the predictor training outcome" >&2
    exit 1
fi

echo "== serve vs one-shot smoke comparison (must be identical)"
# The serve host replays the same day through bounded queues and the
# cross-batch prediction cache; shard i uses seed SEED+i. Its per-shard
# result block must match the equivalent one-shot runs line for line
# (docs/serving.md).
cargo run --release -p tamp-cli --offline -q -- serve \
    --shards 2 --kind porto --scale tiny --seed 7 --algo ppi \
    >"$SMOKE_DIR/serve.txt"
for seed in 7 8; do
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed "$seed" --algo ppi \
        >"$SMOKE_DIR/oneshot.$seed.txt"
done
if ! diff <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/serve.txt") \
          <(cat "$SMOKE_DIR/oneshot.7.txt" "$SMOKE_DIR/oneshot.8.txt" \
            | grep -iE '^(tasks|completed|rejected|avg)'); then
    echo "FAIL: serve host diverged from the one-shot engine" >&2
    exit 1
fi

echo "== serve crash drill (kill/restore one shard must change nothing)"
# Re-run the same 2-shard serve, but kill shard 1 after 40 windows and
# restore it through the JSON snapshot path (--crash-shard/--crash-window),
# with periodic snapshots enabled. The deterministic result lines must be
# byte-identical to the uninterrupted serve run above.
cargo run --release -p tamp-cli --offline -q -- serve \
    --shards 2 --kind porto --scale tiny --seed 7 --algo ppi \
    --crash-shard 1 --crash-window 40 \
    --snapshot-every 20 --snapshot-dir "$SMOKE_DIR/snaps" \
    >"$SMOKE_DIR/serve.crash.txt"
if ! diff <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/serve.txt") \
          <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/serve.crash.txt"); then
    echo "FAIL: crash/restore changed the serve outcome" >&2
    exit 1
fi
for i in 0 1; do
    if ! test -s "$SMOKE_DIR/snaps/shard$i.snapshot.json"; then
        echo "FAIL: missing snapshot for shard$i" >&2
        exit 1
    fi
done

echo "== serve SLO gate (clean run passes, seeded regression trips)"
# Positive arm: a clean 2-shard serve with the full live-observability
# stack — windowed registry, window log, head-sampled trace, metrics
# snapshot, report — against the committed SLO spec. The sampled trace
# must still reconcile exactly (obs.sampled.* corrections), the window
# log must agree with the cumulative snapshot and the per-shard report,
# and every offline slo-check source must stay green.
cargo run --release -p tamp-cli --offline -q -- serve \
    --shards 2 --kind porto --scale tiny --seed 7 --algo ppi \
    --slo slo/serve.slo.toml --windows-log "$SMOKE_DIR/windows.jsonl" \
    --report "$SMOKE_DIR/serve.report.json" \
    --trace "$SMOKE_DIR/serve.trace.jsonl" --trace-sample-head 64 \
    --metrics "$SMOKE_DIR/serve.metrics.json" >/dev/null
cargo run --release -p tamp-cli --offline -q -- trace-validate \
    --trace "$SMOKE_DIR/serve.trace.jsonl" --metrics "$SMOKE_DIR/serve.metrics.json" \
    --windows "$SMOKE_DIR/windows.jsonl" --serve-report "$SMOKE_DIR/serve.report.json"
cargo run --release -p tamp-cli --offline -q -- slo-check --spec slo/serve.slo.toml \
    --windows "$SMOKE_DIR/windows.jsonl" --metrics "$SMOKE_DIR/serve.metrics.json" \
    --trace "$SMOKE_DIR/serve.trace.jsonl" --serve-latency results/serve_latency.json
# Negative arm: 60 ms seeded into the timed step section must push p99
# two orders of magnitude past the 25 ms objective and fail the gate.
cargo run --release -p tamp-cli --offline -q -- serve \
    --shards 1 --kind porto --scale tiny --seed 7 --algo ppi \
    --perturb-sleep-ms 60 --slo slo/serve.slo.toml \
    --windows-log "$SMOKE_DIR/windows.perturbed.jsonl" >/dev/null
if cargo run --release -p tamp-cli --offline -q -- slo-check --spec slo/serve.slo.toml \
    --windows "$SMOKE_DIR/windows.perturbed.jsonl" >/dev/null 2>&1; then
    echo "FAIL: slo-check passed a 60 ms seeded latency regression" >&2
    exit 1
fi

echo "== batched rollout serve smoke (scalar exact, batched backend tolerance-gated)"
# Scalar backend with cross-worker batching must reproduce the serial
# serve outcome byte-for-byte (per-lane bitwise GEMM guarantee,
# DESIGN.md batched inference).
cargo run --release -p tamp-cli --offline -q -- serve \
    --shards 2 --kind porto --scale tiny --seed 7 --algo ppi \
    --rollout-batch 64 \
    >"$SMOKE_DIR/serve.batched.txt"
if ! diff <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/serve.txt") \
          <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/serve.batched.txt"); then
    echo "FAIL: --rollout-batch changed the scalar serve outcome" >&2
    exit 1
fi
# Batched backend: task outcomes must match and the engine's
# per-group probe lane must never trip the relative-tolerance counter.
cargo run --release -p tamp-cli --offline -q -- serve \
    --shards 2 --kind porto --scale tiny --seed 7 --algo ppi \
    --rollout-batch 64 --kernel-backend batched \
    --metrics "$SMOKE_DIR/serve.vec.metrics.json" \
    >"$SMOKE_DIR/serve.vec.txt"
if ! diff <(grep -iE '^(tasks|completed|rejected)' "$SMOKE_DIR/serve.txt") \
          <(grep -iE '^(tasks|completed|rejected)' "$SMOKE_DIR/serve.vec.txt"); then
    echo "FAIL: batched kernel backend changed serve task outcomes beyond tolerance" >&2
    exit 1
fi
if grep -q 'engine.kernel.rtol_exceeded' "$SMOKE_DIR/serve.vec.metrics.json"; then
    echo "FAIL: batched backend exceeded --kernel-rtol in the serve smoke" >&2
    exit 1
fi

echo "== diag_infer smoke (batched GEMM bitwise + delta-store residency)"
# 1k-worker fleet: asserts scalar batched output byte-identical to the
# serial rollouts, batched backend within tolerance, and the base+delta
# store resident under the dense per-worker baseline. Writes nothing.
cargo run --release -p tamp-bench --offline -q --bin diag_infer -- --smoke >/dev/null

echo "== bench trajectory check (committed results within tolerance)"
cargo run --release -p tamp-bench --offline -q --bin bench_trajectory -- --check

echo "== rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps -q

echo "== examples compile"
cargo build --release --offline --examples

echo "== benches compile"
cargo bench --workspace --offline --no-run

echo "CI gate passed."

//! `tamp-cli` — run the TAMP simulator from the command line.
//!
//! ```text
//! tamp-cli generate  --kind porto|gowalla --scale tiny|small|paper --seed N --out workload.json
//! tamp-cli simulate  [--workload file.json | --kind ... --scale ... --seed N]
//!                    --algo ppi|km|ggpso|ub|lb [--loss task|mse] [--detour KM]
//!                    [--tasks N] [--json]
//! tamp-cli predict   [--workload file.json | --kind ... --scale ... --seed N]
//!                    --algo gttaml|gttaml-gt|ctml|maml [--loss task|mse] [--json]
//! ```
//!
//! `simulate` runs the full offline + online pipeline and prints the
//! paper's four assignment metrics; `predict` stops after the offline
//! stage and prints RMSE/MAE/MR/TT; `serve` runs the long-running
//! sharded service host over replayed workloads (docs/serving.md) and
//! prints the same metric block per shard.
//!
//! Telemetry (docs/telemetry.md): `--trace FILE` streams one JSONL event
//! per span/counter/gauge to FILE; `--metrics FILE` writes the end-of-run
//! `TelemetrySnapshot` as JSON. `trace-validate` re-parses a trace (and
//! optionally reconciles it against a metrics snapshot) — the CI gate.

mod args;

use args::Args;
use std::path::Path;
use std::process::ExitCode;
use tamp_obs::{Event, EventKind, JsonlRecorder, NullRecorder, Obs, TelemetrySnapshot};
use tamp_platform::{
    run_assignment_observed, train_predictors_observed, AssignmentAlgo, AssignmentMetrics,
    EngineConfig, LossKind, PredictionAlgo, TrainingConfig,
};
use tamp_serve::{HostConfig, OverloadPolicy, Pacing, ServeHost, Shard, ShardConfig};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

const HELP: &str = "\
tamp-cli — mobility prediction-aware spatial crowdsourcing simulator

USAGE:
  tamp-cli generate --out FILE [--kind porto|gowalla] [--scale tiny|small|paper]
                    [--seed N] [--detour KM] [--tasks N]
  tamp-cli simulate [--workload FILE | generation options] --algo ppi|km|ggpso|ub|lb
                    [--loss task|mse] [--json] [--trace FILE] [--metrics FILE]
                    [--no-index]  (disable spatial prefiltering; same results, slower)
                    [--train-threads N]  (training threads; 0 = all cores, default 1;
                                          results are identical for every N)
  tamp-cli predict  [--workload FILE | generation options]
                    [--algo gttaml|gttaml-gt|ctml|maml] [--loss task|mse] [--json]
                    [--trace FILE] [--metrics FILE] [--train-threads N]
  tamp-cli serve    [--shards N] [generation options] [--algo ppi|km|ggpso|ub|lb]
                    [--queue-cap N]  (submission-queue capacity per shard)
                    [--threads N]    (shard-stepping threads; identical results for any N)
                    [--no-cache]     (disable the cross-batch prediction cache;
                                      same results, more rollout work)
                    [--overload shed|degrade|backpressure]  (queue-overflow policy)
                    [--retry-limit N]   (backpressure offer attempts; default 3)
                    [--snapshot-every N --snapshot-dir DIR]  (crash-safety snapshots)
                    [--crash-shard I --crash-window W]  (drill: kill+restore shard I
                                      after W windows; results must be identical)
                    [--no-index] [--loss task|mse] [--json] [--trace FILE]
                    [--metrics FILE] [--train-threads N]
                    (shard i uses seed SEED+i; see docs/serving.md)
  tamp-cli trace-validate --trace FILE [--metrics FILE]
  tamp-cli help
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    // Surface obvious typos: every command shares one option vocabulary.
    const KNOWN: [&str; 24] = [
        "out",
        "workload",
        "kind",
        "scale",
        "seed",
        "algo",
        "loss",
        "detour",
        "tasks",
        "json",
        "trace",
        "metrics",
        "no-index",
        "train-threads",
        "shards",
        "queue-cap",
        "threads",
        "no-cache",
        "overload",
        "retry-limit",
        "snapshot-every",
        "snapshot-dir",
        "crash-shard",
        "crash-window",
    ];
    for name in args.option_names() {
        if !KNOWN.contains(&name) {
            eprintln!("warning: unknown option --{name} (ignored)");
        }
    }
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("predict") => cmd_predict(&args),
        Some("serve") => cmd_serve(&args),
        Some("trace-validate") => cmd_trace_validate(&args),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "paper" => Ok(Scale::paper_workload1()),
        other => Err(format!("unknown scale: {other}")),
    }
}

fn parse_kind(s: &str) -> Result<WorkloadKind, String> {
    match s {
        "porto" | "workload1" => Ok(WorkloadKind::PortoDidi),
        "gowalla" | "workload2" => Ok(WorkloadKind::GowallaFoursquare),
        other => Err(format!("unknown workload kind: {other}")),
    }
}

fn parse_loss(s: &str) -> Result<LossKind, String> {
    match s {
        "task" | "task-oriented" => Ok(LossKind::TaskOriented),
        "mse" => Ok(LossKind::Mse),
        other => Err(format!("unknown loss: {other}")),
    }
}

fn build_or_load(args: &Args) -> Result<Workload, String> {
    if let Some(path) = args.get("workload") {
        return Workload::load_json(Path::new(path)).map_err(|e| format!("load {path}: {e}"));
    }
    let kind = parse_kind(args.get_or("kind", "porto"))?;
    let scale = parse_scale(args.get_or("scale", "small"))?;
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let mut cfg = WorkloadConfig::new(kind, scale, seed);
    if let Some(d) = args.get_parsed::<f64>("detour")? {
        cfg.detour_limit_km = d;
    }
    if let Some(n) = args.get_parsed::<usize>("tasks")? {
        cfg.scale.n_tasks = n;
    }
    Ok(cfg.build())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("generate needs --out FILE")?;
    let workload = build_or_load(args)?;
    workload
        .save_json(Path::new(out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} workers, {} tasks, horizon {:.0} min",
        workload.workers.len(),
        workload.tasks.len(),
        workload.horizon.as_f64()
    );
    Ok(())
}

fn training_config(args: &Args) -> Result<TrainingConfig, String> {
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let mut cfg = TrainingConfig {
        seed,
        ..TrainingConfig::default()
    };
    cfg.loss = parse_loss(args.get_or("loss", "task"))?;
    if let Some(t) = args.get_parsed::<usize>("train-threads")? {
        cfg.meta.threads = t;
    }
    Ok(cfg)
}

/// Builds the telemetry handle from `--trace` / `--metrics`.
///
/// `--trace FILE` streams JSONL events; `--metrics FILE` only needs the
/// in-process registry, so without a trace path the recorder is a
/// [`NullRecorder`]. Neither flag → a disabled handle (zero overhead).
fn make_obs(args: &Args) -> Result<Obs, String> {
    match args.get("trace") {
        Some(path) => {
            let rec = JsonlRecorder::create(Path::new(path))
                .map_err(|e| format!("create trace {path}: {e}"))?;
            Ok(Obs::new(rec))
        }
        None if args.get("metrics").is_some() => Ok(Obs::new(NullRecorder)),
        None => Ok(Obs::null()),
    }
}

/// Flushes the trace and writes the `--metrics` snapshot, if requested.
fn finish_obs(args: &Args, obs: &Obs) -> Result<(), String> {
    obs.flush();
    if let Some(path) = args.get("metrics") {
        let path = Path::new(path);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, obs.snapshot().to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn parse_algo(s: &str) -> Result<AssignmentAlgo, String> {
    match s {
        "ppi" => Ok(AssignmentAlgo::Ppi),
        "km" => Ok(AssignmentAlgo::Km),
        "ggpso" => Ok(AssignmentAlgo::Ggpso),
        "ub" => Ok(AssignmentAlgo::Ub),
        "lb" => Ok(AssignmentAlgo::Lb),
        other => Err(format!("unknown assignment algorithm: {other}")),
    }
}

/// The deterministic result block `simulate` and `serve` share — CI
/// diffs these lines between the two paths, so they must stay
/// byte-identical for identical runs (timings are printed separately).
fn print_assignment_block(m: &AssignmentMetrics) {
    println!("tasks            : {}", m.tasks_total);
    println!(
        "completed        : {} ({:.3})",
        m.completed,
        m.completion_ratio()
    );
    println!(
        "rejected         : {} ({:.3})",
        m.rejected,
        m.rejection_ratio()
    );
    println!("avg worker cost  : {:.2} km", m.avg_worker_cost_km());
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let workload = build_or_load(args)?;
    let obs = make_obs(args)?;
    let algo = parse_algo(args.get_or("algo", "ppi"))?;
    let needs_predictors = !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb);
    let predictors = if needs_predictors {
        let tcfg = training_config(args)?;
        eprintln!(
            "training predictors ({:?}, {:?} loss)...",
            tcfg.algo, tcfg.loss
        );
        Some(train_predictors_observed(&workload, &tcfg, &obs))
    } else {
        None
    };
    let engine = EngineConfig {
        seed: args.get_parsed::<u64>("seed")?.unwrap_or(42),
        spatial_index: !args.flag("no-index"),
        ..EngineConfig::default()
    };
    let m = run_assignment_observed(
        &workload,
        predictors.as_ref(),
        algo,
        &engine,
        None,
        None,
        &obs,
    )
    .map_err(|e| e.to_string())?;
    finish_obs(args, &obs)?;
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{algo:?}"),
                "tasks_total": m.tasks_total,
                "completed": m.completed,
                "rejected": m.rejected,
                "completion_ratio": m.completion_ratio(),
                "rejection_ratio": m.rejection_ratio(),
                "avg_worker_cost_km": m.avg_worker_cost_km(),
                "algo_seconds": m.algo_seconds,
            })
        );
    } else {
        println!("algorithm        : {algo:?}");
        print_assignment_block(&m);
        println!("algorithm runtime: {:.3} s", m.algo_seconds);
    }
    Ok(())
}

/// The long-running service host: one shard per `--shards`, shard `i`
/// generated (and trained, and seeded) with `SEED + i`, so each shard's
/// result block is byte-identical to `simulate --seed SEED+i` — the CI
/// smoke gate diffs exactly that. The cross-batch prediction cache is
/// on unless `--no-cache` (results are identical either way).
fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.get("workload").is_some() {
        return Err("serve generates one workload per shard; --workload is not supported".into());
    }
    let n_shards = args.get_parsed::<usize>("shards")?.unwrap_or(2).max(1);
    let base_seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let algo = parse_algo(args.get_or("algo", "ppi"))?;
    let kind = parse_kind(args.get_or("kind", "porto"))?;
    let scale = parse_scale(args.get_or("scale", "small"))?;
    let queue_capacity = args.get_parsed::<usize>("queue-cap")?.unwrap_or(4096);
    let threads = args.get_parsed::<usize>("threads")?.unwrap_or(1).max(1);
    let overload = match args.get_or("overload", "shed") {
        "shed" => OverloadPolicy::Shed,
        "degrade" => OverloadPolicy::DegradeToFallback,
        "backpressure" => OverloadPolicy::Backpressure {
            retry_limit: args.get_parsed::<u32>("retry-limit")?.unwrap_or(3),
        },
        other => return Err(format!("unknown overload policy: {other}")),
    };
    let snapshot_every = args.get_parsed::<u64>("snapshot-every")?;
    let snapshot_dir = args.get("snapshot-dir").map(std::path::PathBuf::from);
    if snapshot_every.is_some() != snapshot_dir.is_some() {
        return Err("--snapshot-every and --snapshot-dir must be given together".into());
    }
    if let Some(dir) = &snapshot_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let crash_shard = args.get_parsed::<usize>("crash-shard")?;
    let crash_window = args.get_parsed::<usize>("crash-window")?;
    if crash_shard.is_some() != crash_window.is_some() {
        return Err("--crash-shard and --crash-window must be given together".into());
    }
    let obs = make_obs(args)?;
    let needs_predictors = !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb);

    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let seed = base_seed + i as u64;
        let mut wcfg = WorkloadConfig::new(kind, scale, seed);
        if let Some(d) = args.get_parsed::<f64>("detour")? {
            wcfg.detour_limit_km = d;
        }
        if let Some(n) = args.get_parsed::<usize>("tasks")? {
            wcfg.scale.n_tasks = n;
        }
        let workload = wcfg.build();
        let predictors = if needs_predictors {
            let mut tcfg = training_config(args)?;
            tcfg.seed = seed;
            eprintln!(
                "shard{i}: training predictors ({:?}, {:?} loss)...",
                tcfg.algo, tcfg.loss
            );
            Some(train_predictors_observed(&workload, &tcfg, &obs))
        } else {
            None
        };
        let cfg = ShardConfig {
            algo,
            engine: EngineConfig {
                seed,
                spatial_index: !args.flag("no-index"),
                prediction_cache: !args.flag("no-cache"),
                ..EngineConfig::default()
            },
            faults: None,
            queue_capacity,
            overload,
        };
        let shard = Shard::new(format!("shard{i}"), workload, predictors, cfg)
            .map_err(|e| e.to_string())?;
        shards.push(shard);
    }

    let mut host = ServeHost::new(
        shards,
        HostConfig {
            threads,
            pacing: Pacing::FullSpeed,
            snapshot_every,
            snapshot_dir,
        },
    );
    if let (Some(si), Some(w)) = (crash_shard, crash_window) {
        if si >= n_shards {
            return Err(format!("--crash-shard {si}: only {n_shards} shards"));
        }
        host.run_windows(w, &obs);
        host.crash_restore_shard(si).map_err(|e| e.to_string())?;
        eprintln!("crash drill: killed and restored shard{si} after {w} windows");
    }
    let report = host.run(&obs);
    finish_obs(args, &obs)?;

    if args.flag("json") {
        let shards: Vec<serde_json::Value> = report
            .shards
            .iter()
            .map(|r| {
                serde_json::json!({
                    "shard": r.name,
                    "windows": r.windows,
                    "tasks_total": r.metrics.tasks_total,
                    "completed": r.metrics.completed,
                    "rejected": r.metrics.rejected,
                    "completion_ratio": r.metrics.completion_ratio(),
                    "rejection_ratio": r.metrics.rejection_ratio(),
                    "avg_worker_cost_km": r.metrics.avg_worker_cost_km(),
                    "submitted": r.counts.submitted_tasks + r.counts.submitted_reports,
                    "shed": r.counts.shed(),
                    "degraded": r.counts.degraded(),
                    "retried": r.counts.retried,
                    "crashes": r.crashes,
                    "cache_hits": r.cache.hits,
                    "cache_misses": r.cache.misses,
                    "cache_hit_rate": r.cache_hit_rate(),
                    "batch_p50_ms": r.batch_p50_ms,
                    "batch_p95_ms": r.batch_p95_ms,
                    "batch_p99_ms": r.batch_p99_ms,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{algo:?}"),
                "windows": report.windows,
                "shards": shards,
            })
        );
    } else {
        for (i, r) in report.shards.iter().enumerate() {
            println!("-- {} (seed {}, {algo:?})", r.name, base_seed + i as u64);
            print_assignment_block(&r.metrics);
            println!(
                "windows          : {} ({:.2} ms p50, {:.2} ms p95, {:.2} ms p99)",
                r.windows, r.batch_p50_ms, r.batch_p95_ms, r.batch_p99_ms
            );
            println!(
                "submissions      : {} accepted, {} shed, {} degraded, {} retried",
                r.counts.submitted_tasks + r.counts.submitted_reports,
                r.counts.shed(),
                r.counts.degraded(),
                r.counts.retried
            );
            if r.crashes > 0 {
                println!("crash restores   : {}", r.crashes);
            }
            println!(
                "prediction cache : {} hits, {} misses ({:.3} hit rate), {} invalidated",
                r.cache.hits,
                r.cache.misses,
                r.cache_hit_rate(),
                r.cache.invalidations
            );
        }
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let workload = build_or_load(args)?;
    let obs = make_obs(args)?;
    let mut tcfg = training_config(args)?;
    tcfg.algo = match args.get_or("algo", "gttaml") {
        "gttaml" => PredictionAlgo::Gttaml,
        "gttaml-gt" => PredictionAlgo::GttamlGt,
        "ctml" => PredictionAlgo::Ctml,
        "maml" => PredictionAlgo::Maml,
        other => return Err(format!("unknown prediction algorithm: {other}")),
    };
    let p = train_predictors_observed(&workload, &tcfg, &obs);
    finish_obs(args, &obs)?;
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{:?}", tcfg.algo),
                "rmse_cells": p.overall.rmse_cells,
                "mae_cells": p.overall.mae_cells,
                "matching_rate": p.overall.mr,
                "train_seconds": p.train_seconds,
                "clusters": p.n_clusters,
            })
        );
    } else {
        println!("algorithm     : {:?}", tcfg.algo);
        println!("RMSE          : {:.4} cells", p.overall.rmse_cells);
        println!("MAE           : {:.4} cells", p.overall.mae_cells);
        println!("matching rate : {:.4}", p.overall.mr);
        println!("training time : {:.1} s", p.train_seconds);
        println!("leaf clusters : {}", p.n_clusters);
    }
    Ok(())
}

/// Validates a JSONL trace: every line must parse as an [`Event`], span
/// ids must be unique, and every span parent must reference another span
/// in the file. With `--metrics`, additionally reconciles the trace
/// against the snapshot: per-name counter sums must match the snapshot's
/// counters, and per-name span counts must match the snapshot's span
/// histograms.
fn cmd_trace_validate(args: &Args) -> Result<(), String> {
    let path = args
        .get("trace")
        .ok_or("trace-validate needs --trace FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;

    let mut events: Vec<Event> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::from_json_line(line)
            .map_err(|e| format!("{path}:{}: bad event: {e}", lineno + 1))?;
        events.push(ev);
    }

    let mut span_ids = std::collections::HashSet::new();
    let mut counter_sums: std::collections::BTreeMap<String, u64> = Default::default();
    let mut span_counts: std::collections::BTreeMap<String, u64> = Default::default();
    let (mut n_spans, mut n_counts, mut n_gauges) = (0u64, 0u64, 0u64);
    for ev in &events {
        match ev.kind {
            EventKind::Span => {
                n_spans += 1;
                let span = ev.span.as_ref().ok_or("span event without span data")?;
                if !span_ids.insert(span.id) {
                    return Err(format!("duplicate span id {} in {path}", span.id));
                }
                *span_counts.entry(ev.name.clone()).or_default() += 1;
            }
            EventKind::Count => {
                n_counts += 1;
                *counter_sums.entry(ev.name.clone()).or_default() += ev.value as u64;
            }
            EventKind::Gauge => n_gauges += 1,
        }
    }
    for ev in &events {
        if let Some(span) = &ev.span {
            if let Some(parent) = span.parent {
                if !span_ids.contains(&parent) {
                    return Err(format!(
                        "span {} ({}) references unknown parent {parent}",
                        span.id, ev.name
                    ));
                }
            }
        }
    }

    if let Some(mpath) = args.get("metrics") {
        let mtext = std::fs::read_to_string(mpath).map_err(|e| format!("read {mpath}: {e}"))?;
        let snap = TelemetrySnapshot::from_json(&mtext).map_err(|e| format!("{mpath}: {e}"))?;
        for (name, sum) in &counter_sums {
            let got = snap.counters.get(name).copied().unwrap_or(0);
            if got != *sum {
                return Err(format!(
                    "counter {name}: trace sums to {sum}, snapshot says {got}"
                ));
            }
        }
        for (name, n) in &span_counts {
            let got = snap.histograms.get(name).map_or(0, |h| h.count);
            if got != *n {
                return Err(format!(
                    "span {name}: {n} events in trace, {got} in snapshot histogram"
                ));
            }
        }
    }

    println!(
        "trace OK: {} events ({n_spans} spans, {n_counts} counts, {n_gauges} gauges)",
        events.len()
    );
    Ok(())
}

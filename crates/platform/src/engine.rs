//! The online batch assignment loop (Figure 1, "online task assignment").
//!
//! Time advances in 2-minute batch windows (Section IV-A). Each batch:
//!
//! 1. Newly released tasks join the pending pool; expired ones leave.
//! 2. Idle workers are snapshotted into [`WorkerView`]s: current
//!    location, the model's rollout of their next `predict_horizon` time
//!    units (from the last `seq_in` observed samples), and their
//!    validation `MR`.
//! 3. The configured assignment algorithm proposes a plan `M`.
//! 4. Each assigned worker accepts or rejects against their *real*
//!    itinerary ([`crate::acceptance`]); accepted tasks complete at the
//!    real detour cost, and the worker is busy until arrival.
//! 5. Rejected and unassigned tasks carry over to the next batch while
//!    still valid — the accumulation effect the paper describes for
//!    small detours.
//!
//! Two drivers share this loop:
//!
//! * the **one-shot** entry points below ([`run_assignment`] and
//!   friends) iterate a whole simulated day over a [`Workload`];
//! * the **incremental** API ([`EngineState`] + [`StepCtx`]) advances
//!   one batch window at a time, with tasks and worker reports supplied
//!   by the caller — this is what the long-running `tamp-serve` host
//!   drives, one [`EngineState`] per shard.
//!
//! Both produce byte-identical assignments given the same inputs; the
//! one-shot entry points are thin loops over [`EngineState::step_batch`].

use crate::acceptance::decide;
use crate::faults::{FaultConfig, FaultPlan, RolloutFault};
use crate::metrics::{AssignmentMetrics, BatchRecord};
use crate::predcache::{PredictionCache, RolloutKey};
use crate::training::TrainedPredictors;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use tamp_assign::baselines::{
    ggpso_assign_excluding, km_assign_excluding, km_assign_indexed, lb_assign_excluding,
    ub_assign_excluding, GgpsoParams,
};
use tamp_assign::ppi::{ppi_assign_observed, PpiParams};
use tamp_assign::view::{ExcludedPairs, WorkerView};
use tamp_core::rng::{rng_for, streams};
use tamp_core::EngineError;
use tamp_core::{Minutes, Point, SpatialTask, TaskId, TimedPoint, WorkerId, BATCH_WINDOW_MINUTES};
use tamp_nn::loss::Pt2;
use tamp_nn::{clip_grad_norm, MseLoss, Seq2Seq, TrainBatch};
use tamp_obs::Obs;
use tamp_sim::Workload;

/// Which assignment algorithm the engine runs (the roster of Fig. 6–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignmentAlgo {
    /// Algorithm 4 (PPI).
    Ppi,
    /// Plain KM on predicted proximity.
    Km,
    /// The genetic baseline.
    Ggpso,
    /// Real-trajectory oracle (upper bound).
    Ub,
    /// Current-location only (lower bound).
    Lb,
}

/// Online continual-adaptation settings: the platform periodically
/// fine-tunes each worker's model on the movements observed *today*,
/// tracking intraday drift the offline stage could not see (an extension
/// beyond the paper's offline-only training — see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct OnlineAdaptConfig {
    /// Minutes between adaptation rounds.
    pub every_min: f64,
    /// SGD steps per round per worker.
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for OnlineAdaptConfig {
    fn default() -> Self {
        Self {
            every_min: 60.0,
            steps: 2,
            lr: 0.05,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Batch window length in minutes (paper: 2).
    pub batch_window_min: f64,
    /// Matching-rate radius `a` (km).
    pub a_km: f64,
    /// PPI stage-2 mini-batch size `ε`.
    pub epsilon: usize,
    /// How many future time units the models roll out per batch.
    pub predict_horizon: usize,
    /// Observed samples fed to the model (`seq_in`).
    pub seq_in: usize,
    /// GGPSO hyper-parameters.
    pub ggpso: GgpsoParams,
    /// Intraday model fine-tuning on observed movements; `None` keeps the
    /// offline models frozen (the paper's setting).
    pub online_adapt: Option<OnlineAdaptConfig>,
    /// How long a worker stays unavailable after rejecting an assignment,
    /// in minutes. Rejections cost the platform real capacity (the
    /// paper's motivation: rejections depress worker retention and
    /// participation), which is what makes low-rejection assignment
    /// valuable.
    pub rejection_cooldown_min: f64,
    /// RNG seed (GGPSO only).
    pub seed: u64,
    /// Prefilter candidate pairs through a spatial bucket index (PPI and
    /// the KM baseline). Assignments are byte-identical with or without
    /// it — the index only prunes pairs the feasibility predicates would
    /// reject anyway — so this exists to compare the two paths
    /// (`--no-index` on the CLI) and as an escape hatch.
    pub spatial_index: bool,
    /// Reuse each worker's model rollout across consecutive batch
    /// windows while its inputs are unchanged (see
    /// [`crate::predcache`]). Like the spatial index, this is a pure
    /// optimisation: assignments are byte-identical with or without it.
    /// Off by default so one-shot experiment runs measure the raw
    /// rollout cost; the serve layer turns it on.
    pub prediction_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            batch_window_min: BATCH_WINDOW_MINUTES,
            a_km: 0.4,
            epsilon: 8,
            predict_horizon: 4,
            seq_in: 5,
            ggpso: GgpsoParams::default(),
            online_adapt: None,
            rejection_cooldown_min: 10.0,
            seed: 0,
            spatial_index: true,
            prediction_cache: false,
        }
    }
}

/// Runs one full simulated test day and returns the paper's four metrics.
///
/// `predictors` supplies per-worker models and matching rates; it may be
/// `None` only for the UB / LB baselines, which don't use predictions.
///
/// Panics on configuration errors (notably a prediction-based algorithm
/// without predictors); [`try_run_assignment`] is the fallible variant.
pub fn run_assignment(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
) -> AssignmentMetrics {
    try_run_assignment(workload, predictors, algo, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_assignment`], additionally recording one [`BatchRecord`]
/// per batch window into `trace` (for dashboards and load analysis).
pub fn run_assignment_traced(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    trace: &mut Vec<BatchRecord>,
) -> AssignmentMetrics {
    run_assignment_inner(
        workload,
        predictors,
        algo,
        cfg,
        None,
        Some(trace),
        &Obs::null(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_assignment`]: mis-wired configurations come
/// back as [`EngineError`] instead of a panic.
pub fn try_run_assignment(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(workload, predictors, algo, cfg, None, None, &Obs::null())
}

/// Runs a day under injected faults (see [`crate::faults`]). With
/// [`FaultConfig::none`] this is bit-identical to [`try_run_assignment`].
pub fn run_assignment_with_faults(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: &FaultConfig,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(
        workload,
        predictors,
        algo,
        cfg,
        Some(faults),
        None,
        &Obs::null(),
    )
}

/// [`run_assignment_with_faults`] with a per-batch trace.
pub fn run_assignment_with_faults_traced(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: &FaultConfig,
    trace: &mut Vec<BatchRecord>,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(
        workload,
        predictors,
        algo,
        cfg,
        Some(faults),
        Some(trace),
        &Obs::null(),
    )
}

/// The fully-general observed entry point: optional fault injection,
/// optional per-batch trace, and a telemetry handle (pass [`Obs::null`]
/// for none — that path is identical to the legacy entry points).
///
/// Per batch the engine emits one `engine.batch` span with nested
/// `engine.batch.{carry,snapshot,matching,acceptance}` stage spans (plus
/// `engine.adapt` on adaptation rounds), an `assign.<algo>` span around
/// the matcher, fault counters mirroring [`AssignmentMetrics`]
/// (`engine.fault.*`), and assignment-outcome counters
/// (`engine.assign.{proposed,accepted,rejected}`).
pub fn run_assignment_observed(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: Option<&FaultConfig>,
    trace: Option<&mut Vec<BatchRecord>>,
    obs: &Obs,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(workload, predictors, algo, cfg, faults, trace, obs)
}

/// Span name of the matcher stage for each algorithm.
fn algo_span_name(algo: AssignmentAlgo) -> &'static str {
    match algo {
        AssignmentAlgo::Ppi => "assign.ppi",
        AssignmentAlgo::Km => "assign.km",
        AssignmentAlgo::Ggpso => "assign.ggpso",
        AssignmentAlgo::Ub => "assign.ub",
        AssignmentAlgo::Lb => "assign.lb",
    }
}

/// Per-batch context for [`EngineState::step_batch`]: everything the
/// step needs that outlives the state itself.
///
/// `reports` is the serve path's observation source: per-worker logs of
/// the location reports *received* so far (indexed like
/// `workload.workers`). When present (and no fault plan is active) the
/// engine reads worker histories from these logs instead of from the
/// ground-truth routines — a log holding exactly the routine samples
/// before `now` reproduces the one-shot run bit for bit. A fault plan
/// takes precedence over `reports`: under fault injection the received
/// streams are defined by the plan.
pub struct StepCtx<'a> {
    /// The workload the engine serves (workers, tasks, grid, horizon).
    pub workload: &'a Workload,
    /// Trained per-worker predictors; `None` only for UB/LB.
    pub predictors: Option<&'a TrainedPredictors>,
    /// Assignment algorithm to run each batch.
    pub algo: AssignmentAlgo,
    /// Engine configuration.
    pub cfg: &'a EngineConfig,
    /// Active fault plan, if any.
    pub fplan: Option<&'a FaultPlan>,
    /// Per-worker received-report logs (the serve path); ignored while
    /// `fplan` is set.
    pub reports: Option<&'a [Vec<TimedPoint>]>,
    /// Telemetry handle.
    pub obs: &'a Obs,
}

/// The engine's mutable cross-batch state, advanced one window at a
/// time by [`EngineState::step_batch`].
///
/// The one-shot entry points ([`run_assignment`] and friends) drive
/// this internally; the `tamp-serve` host owns one per shard and feeds
/// it tasks drained from its submission queue. Given the same sequence
/// of admitted tasks and the same observation source, stepping is
/// byte-identical to the one-shot loop.
pub struct EngineState {
    metrics: AssignmentMetrics,
    /// Online adaptation works on a private copy of the models so a run
    /// never mutates the shared offline predictors.
    live_models: Option<Vec<Seq2Seq>>,
    next_adapt: Option<f64>,
    pending: Vec<SpatialTask>,
    busy_until: HashMap<WorkerId, f64>,
    completed: HashSet<TaskId>,
    /// Pairs the worker already rejected; never proposed again (the
    /// platform remembers refusals across batches).
    refused: ExcludedPairs,
    rng: rand::rngs::StdRng,
    /// Quarantine flags for divergent online-adapted models (once a
    /// model is rolled back to its offline checkpoint it stays frozen).
    quarantined: Vec<bool>,
    adapt_round: u64,
    batch_idx: u64,
    /// Start of the next batch window, minutes.
    t: f64,
    cache: Option<PredictionCache>,
}

impl EngineState {
    /// Validates the configuration and builds the initial state.
    ///
    /// Fails with [`EngineError::MissingPredictors`] when a
    /// prediction-based algorithm has no predictors and with
    /// [`EngineError::InvalidEngineConfig`] on a non-positive batch
    /// window.
    pub fn new(
        workload: &Workload,
        predictors: Option<&TrainedPredictors>,
        algo: AssignmentAlgo,
        cfg: &EngineConfig,
    ) -> Result<Self, EngineError> {
        if !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb) && predictors.is_none() {
            return Err(EngineError::MissingPredictors {
                algo: format!("{algo:?}"),
            });
        }
        if !cfg.batch_window_min.is_finite() || cfg.batch_window_min <= 0.0 {
            return Err(EngineError::InvalidEngineConfig(format!(
                "batch_window_min = {} must be finite and > 0",
                cfg.batch_window_min
            )));
        }
        let live_models = match (cfg.online_adapt, predictors) {
            (Some(_), Some(p)) => Some(p.models.clone()),
            _ => None,
        };
        Ok(Self {
            metrics: AssignmentMetrics {
                tasks_total: workload.tasks.len(),
                ..Default::default()
            },
            live_models,
            next_adapt: cfg.online_adapt.map(|oa| oa.every_min),
            pending: Vec::new(),
            busy_until: HashMap::new(),
            completed: HashSet::new(),
            refused: ExcludedPairs::new(),
            rng: rng_for(cfg.seed, streams::GENETIC),
            quarantined: vec![false; workload.workers.len()],
            adapt_round: 0,
            batch_idx: 0,
            t: 0.0,
            cache: cfg
                .prediction_cache
                .then(|| PredictionCache::new(workload.workers.len())),
        })
    }

    /// Start of the next batch window, minutes since day start.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// End of the next batch window (`now + batch_window_min`) — the
    /// boundary a driver should drain submissions up to (exclusive)
    /// before calling [`EngineState::step_batch`].
    pub fn next_window_end(&self, cfg: &EngineConfig) -> f64 {
        self.t + cfg.batch_window_min
    }

    /// Batch windows stepped so far.
    pub fn batches_run(&self) -> u64 {
        self.batch_idx
    }

    /// Tasks currently live (admitted, unexpired, uncompleted).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative prediction-cache counters (zeros while the cache is
    /// disabled).
    pub fn cache_stats(&self) -> crate::predcache::CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Metrics accumulated so far (a run in progress; see
    /// [`EngineState::finish`] for the end-of-run version).
    pub fn metrics(&self) -> &AssignmentMetrics {
        &self.metrics
    }

    /// Advances one batch window. `admitted` are the tasks newly
    /// released into this window, in release order; expired ones are
    /// dropped (and counted) by the carry stage, so feeding a stale task
    /// is safe.
    pub fn step_batch(&mut self, ctx: &StepCtx<'_>, admitted: &[SpatialTask]) -> BatchRecord {
        let cfg = ctx.cfg;
        let obs = ctx.obs;
        let _batch_span = obs.span_idx("engine.batch", self.batch_idx);
        let now = Minutes::new(self.t + cfg.batch_window_min);
        // 1. Admit newly released tasks; drop expired ones.
        let carry_start = Instant::now();
        let carry_span = obs.span_idx("engine.batch.carry", self.batch_idx);
        self.pending.extend_from_slice(admitted);
        let completed = &self.completed;
        let mut expired = 0usize;
        self.pending.retain(|task| {
            let live = task.deadline.as_f64() > now.as_f64() && !completed.contains(&task.id);
            if !live && !completed.contains(&task.id) {
                expired += 1;
            }
            live
        });
        drop(carry_span);

        let mut record = BatchRecord {
            t_min: now.as_f64(),
            pending: self.pending.len(),
            expired,
            ..Default::default()
        };
        self.metrics.tasks_expired += expired;
        record.stages.carry_s = carry_start.elapsed().as_secs_f64();
        if let Some(pl) = ctx.fplan {
            record.dropped_reports = pl.dropped_in_window(self.t, now.as_f64());
            self.metrics.dropped_reports += record.dropped_reports;
            obs.count_idx(
                "engine.fault.dropped_reports",
                record.dropped_reports as u64,
                Some(self.batch_idx),
            );
        }
        obs.gauge_idx(
            "engine.batch.pending",
            record.pending as f64,
            Some(self.batch_idx),
        );

        if !self.pending.is_empty() {
            // 2. Snapshot idle workers.
            let snapshot_start = Instant::now();
            let snapshot_span = obs.span_idx("engine.batch.snapshot", self.batch_idx);
            let mut views: Vec<WorkerView> = Vec::new();
            for (wi, sw) in ctx.workload.workers.iter().enumerate() {
                if self
                    .busy_until
                    .get(&sw.worker.id)
                    .copied()
                    .unwrap_or(f64::NEG_INFINITY)
                    > now.as_f64()
                {
                    continue;
                }
                // Offline workers are unreachable: no report stream, no
                // assignment proposals.
                if ctx
                    .fplan
                    .is_some_and(|pl| pl.workers[wi].is_offline(now.as_f64()))
                {
                    continue;
                }
                if let Some(view) = make_view(
                    ctx,
                    self.live_models.as_deref(),
                    wi,
                    now,
                    self.batch_idx,
                    &mut record,
                    self.cache.as_mut(),
                ) {
                    views.push(view);
                }
            }
            drop(snapshot_span);
            record.stages.snapshot_s = snapshot_start.elapsed().as_secs_f64();
            self.metrics.fallback_views += record.fallback_views;
            obs.count_idx(
                "engine.fault.fallback_views",
                record.fallback_views as u64,
                Some(self.batch_idx),
            );

            record.idle_workers = views.len();
            obs.gauge_idx(
                "engine.batch.idle_workers",
                record.idle_workers as f64,
                Some(self.batch_idx),
            );
            if !views.is_empty() {
                // 3. Assign.
                let start = Instant::now();
                let matching_span = obs.span_idx("engine.batch.matching", self.batch_idx);
                let algo_span = obs.span_idx(algo_span_name(ctx.algo), self.batch_idx);
                let plan = match ctx.algo {
                    AssignmentAlgo::Ppi => ppi_assign_observed(
                        &self.pending,
                        &views,
                        &PpiParams {
                            a_km: cfg.a_km,
                            epsilon: cfg.epsilon,
                            now,
                            use_index: cfg.spatial_index,
                        },
                        &self.refused,
                        obs,
                    ),
                    AssignmentAlgo::Km if cfg.spatial_index => {
                        km_assign_indexed(&self.pending, &views, now, &self.refused)
                    }
                    AssignmentAlgo::Km => {
                        km_assign_excluding(&self.pending, &views, now, &self.refused)
                    }
                    AssignmentAlgo::Ggpso => ggpso_assign_excluding(
                        &self.pending,
                        &views,
                        now,
                        &cfg.ggpso,
                        &self.refused,
                        &mut self.rng,
                    ),
                    AssignmentAlgo::Ub => {
                        ub_assign_excluding(&self.pending, &views, now, &self.refused)
                    }
                    AssignmentAlgo::Lb => {
                        lb_assign_excluding(&self.pending, &views, now, &self.refused)
                    }
                };
                drop(algo_span);
                drop(matching_span);
                record.stages.matching_s = start.elapsed().as_secs_f64();
                self.metrics.algo_seconds += record.stages.matching_s;

                // 4. Acceptance against real itineraries. Id → snapshot
                // maps are built once per batch so each proposed pair
                // resolves in O(1) instead of scanning the batch.
                let acceptance_start = Instant::now();
                let acceptance_span = obs.span_idx("engine.batch.acceptance", self.batch_idx);
                let task_by_id: HashMap<_, _> = self.pending.iter().map(|tk| (tk.id, tk)).collect();
                let view_by_id: HashMap<_, _> = views.iter().map(|v| (v.id, v)).collect();
                record.proposed = plan.len();
                for pair in plan.pairs() {
                    self.metrics.assigned_total += 1;
                    // An algorithm handing back a pair that references a
                    // task or worker outside this batch's snapshot is a
                    // bug in that algorithm — but not one worth killing
                    // the whole day's assignment loop for. Skip and
                    // count it (`completed + rejected + invalid_pairs ==
                    // assigned_total` stays an invariant).
                    let Some(task) = task_by_id.get(&pair.task).map(|tk| **tk) else {
                        self.metrics.invalid_pairs += 1;
                        record.invalid_pairs += 1;
                        continue;
                    };
                    let Some(&view) = view_by_id.get(&pair.worker) else {
                        self.metrics.invalid_pairs += 1;
                        record.invalid_pairs += 1;
                        continue;
                    };
                    match decide(
                        &view.real_future,
                        view.detour_limit_km,
                        view.speed_km_per_min,
                        &task,
                        now,
                    ) {
                        Some((detour, _arrival)) => {
                            record.accepted += 1;
                            self.metrics.completed += 1;
                            self.metrics.total_detour_km += detour;
                            self.completed.insert(task.id);
                            // The worker is occupied for the time the
                            // extra travel takes (they keep following
                            // their routine otherwise), at least one
                            // batch window.
                            let busy_min =
                                tamp_core::time::travel_minutes(detour, view.speed_km_per_min)
                                    .max(cfg.batch_window_min);
                            self.busy_until.insert(pair.worker, now.as_f64() + busy_min);
                        }
                        None => {
                            record.rejected += 1;
                            self.metrics.rejected += 1;
                            // Task stays pending (carried to next batch)
                            // but this worker won't be asked again, and
                            // they disengage for a while.
                            self.refused.insert((task.id, pair.worker));
                            self.busy_until
                                .insert(pair.worker, now.as_f64() + cfg.rejection_cooldown_min);
                        }
                    }
                }
                let completed = &self.completed;
                self.pending.retain(|task| !completed.contains(&task.id));
                drop(acceptance_span);
                record.stages.acceptance_s = acceptance_start.elapsed().as_secs_f64();
                obs.count_idx(
                    "engine.assign.proposed",
                    record.proposed as u64,
                    Some(self.batch_idx),
                );
                obs.count_idx(
                    "engine.assign.accepted",
                    record.accepted as u64,
                    Some(self.batch_idx),
                );
                obs.count_idx(
                    "engine.assign.rejected",
                    record.rejected as u64,
                    Some(self.batch_idx),
                );
                obs.count_idx(
                    "engine.fault.invalid_pairs",
                    record.invalid_pairs as u64,
                    Some(self.batch_idx),
                );
            }
        }
        // Periodic intraday fine-tuning on the day's observations so far.
        if let (Some(oa), Some(models)) = (cfg.online_adapt, self.live_models.as_mut()) {
            if let Some(due) = self.next_adapt {
                if now.as_f64() >= due {
                    let adapt_start = Instant::now();
                    let adapt_span = obs.span_idx("engine.adapt", self.adapt_round);
                    let newly = online_adapt_round(
                        ctx,
                        models,
                        now,
                        &oa,
                        self.adapt_round,
                        &mut self.quarantined,
                    );
                    drop(adapt_span);
                    record.stages.adapt_s = adapt_start.elapsed().as_secs_f64();
                    record.quarantined_models = newly;
                    self.metrics.quarantined_models += newly;
                    obs.count_idx(
                        "engine.fault.quarantined_models",
                        newly as u64,
                        Some(self.adapt_round),
                    );
                    self.adapt_round += 1;
                    self.next_adapt = Some(due + oa.every_min);
                    // Any non-quarantined model may have taken gradient
                    // steps: every cached rollout is now stale.
                    if let Some(cache) = &mut self.cache {
                        record.cache_invalidations = cache.invalidate_all();
                    }
                }
            }
        }
        self.metrics.cache_hits += record.cache_hits;
        self.metrics.cache_misses += record.cache_misses;
        self.metrics.cache_invalidations += record.cache_invalidations;
        self.metrics.stages.add(&record.stages);
        self.t += cfg.batch_window_min;
        self.batch_idx += 1;
        record
    }

    /// Ends the run: fills the backward-compatible `algo_seconds` alias,
    /// flushes telemetry, and returns the accumulated metrics.
    pub fn finish(mut self, obs: &Obs) -> AssignmentMetrics {
        self.metrics.stages.matching_s = self.metrics.algo_seconds;
        obs.flush();
        self.metrics
    }
}

#[allow(clippy::too_many_arguments)]
fn run_assignment_inner(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: Option<&FaultConfig>,
    mut trace: Option<&mut Vec<BatchRecord>>,
    obs: &Obs,
) -> Result<AssignmentMetrics, EngineError> {
    let mut state = EngineState::new(workload, predictors, algo, cfg)?;
    if let Some(fc) = faults {
        fc.validate().map_err(EngineError::InvalidEngineConfig)?;
    }
    // A no-op fault layer takes the exact legacy code paths: `FaultConfig
    // ::none()` must reproduce a clean run bit for bit.
    let fplan: Option<FaultPlan> = faults
        .filter(|fc| !fc.is_none())
        .map(|fc| FaultPlan::build(workload, fc));
    let ctx = StepCtx {
        workload,
        predictors,
        algo,
        cfg,
        fplan: fplan.as_ref(),
        reports: None,
        obs,
    };

    let horizon = workload.horizon.as_f64();
    let mut next_task = 0usize;
    let mut admitted: Vec<SpatialTask> = Vec::new();
    while state.now() < horizon {
        let window_end = state.next_window_end(cfg);
        admitted.clear();
        while next_task < workload.tasks.len()
            && workload.tasks[next_task].release.as_f64() < window_end
        {
            admitted.push(workload.tasks[next_task]);
            next_task += 1;
        }
        let record = state.step_batch(&ctx, &admitted);
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(record);
        }
    }
    Ok(state.finish(obs))
}

/// Builds the worker view the assignment algorithms see at time `now`.
///
/// Under fault injection the view degrades gracefully instead of dying
/// (the "degradation ladder", DESIGN.md):
///
/// 1. model rollout over the *received* report stream (the normal path);
/// 2. if the rollout fails or any output is non-finite — a persistence
///    forecast from the last received report (`fallback_views`);
/// 3. if no report was ever received from a worker who should have been
///    heard from — exclude the worker from this batch entirely.
///
/// With a [`PredictionCache`], healthy rollouts whose inputs are
/// unchanged since the previous window are served from the cache
/// (`cache_hits` on the record); fault-injected and failed rollouts
/// bypass it (see [`crate::predcache`] for the invariant).
fn make_view(
    ctx: &StepCtx<'_>,
    live_models: Option<&[Seq2Seq]>,
    wi: usize,
    now: Minutes,
    batch_idx: u64,
    record: &mut BatchRecord,
    mut cache: Option<&mut PredictionCache>,
) -> Option<WorkerView> {
    let cfg = ctx.cfg;
    let workload = ctx.workload;
    let sw = &workload.workers[wi];

    // Observed history so far today: the worker's periodic location
    // reports (one per 10-minute time unit). The platform never sees the
    // worker between reports — "when they are online, they merely share
    // their current location" (Section II) — so the freshest information
    // any algorithm has is the *last report*, which may be up to one time
    // unit stale. This is precisely the gap mobility prediction fills.
    // Under fault injection only *received* reports count; on the serve
    // path the received stream is the shard's report log.
    let observed: Vec<Point> = match (ctx.fplan, ctx.reports) {
        (Some(pl), _) => pl.workers[wi]
            .received_before(now)
            .iter()
            .map(|p| p.loc)
            .collect(),
        (None, Some(logs)) => logs[wi].iter().map(|p| p.loc).collect(),
        (None, None) => sw
            .worker
            .real_routine
            .window(Minutes::ZERO, now)
            .iter()
            .map(|p| p.loc)
            .collect(),
    };
    let current = match observed.last().copied() {
        Some(c) => c,
        None => {
            if ctx
                .fplan
                .is_some_and(|pl| pl.workers[wi].any_report_before(now))
            {
                // Every report so far was lost: the platform has no idea
                // where this worker is. Bottom rung: exclude them.
                return None;
            }
            // No report was *due* yet (start of day): fall back to the
            // worker's registered day-start position, as before.
            sw.worker.location_at(now)?
        }
    };

    let predicted = match ctx.predictors {
        Some(p) => {
            let rollout_start = Instant::now();
            let rollout = ctx.fplan.map_or(RolloutFault::Healthy, |pl| {
                pl.injector.rollout(wi as u64, batch_idx)
            });
            // Cross-batch reuse: a healthy rollout is a pure function of
            // the cache key, so a matching entry from a previous window
            // is byte-identical to recomputing. Fault-injected rollouts
            // depend on the batch index and bypass the cache.
            let cacheable = matches!(rollout, RolloutFault::Healthy);
            if cacheable {
                let key = RolloutKey::new(observed.len(), current, cfg.predict_horizon);
                if let Some(cache) = cache.as_deref_mut() {
                    if let Some(pts) = cache.lookup(wi, &key) {
                        record.cache_hits += 1;
                        record.stages.rollout_s += rollout_start.elapsed().as_secs_f64();
                        return Some(finish_view(sw, now, current, pts, ctx.predictors, wi));
                    }
                    record.cache_misses += 1;
                }
            }
            let mut input: Vec<[f64; 2]> = observed
                .iter()
                .rev()
                .take(cfg.seq_in)
                .rev()
                .map(|pt| {
                    let (x, y) = workload.grid.normalize(*pt);
                    [x, y]
                })
                .collect();
            if input.is_empty() {
                let (x, y) = workload.grid.normalize(current);
                input.push([x, y]);
            }
            let raw_rollout = match rollout {
                RolloutFault::Unavailable => None,
                RolloutFault::Healthy => Some(
                    live_models
                        .map_or(&p.models[wi], |ms| &ms[wi])
                        .predict(&input, cfg.predict_horizon),
                ),
                RolloutFault::Garbage => Some(ctx.fplan.unwrap().injector.garbage_rollout(
                    wi as u64,
                    batch_idx,
                    cfg.predict_horizon,
                )),
            };
            // Rollout, clamped to the grid and to physical reachability:
            // the worker cannot be farther from their current position
            // than speed × elapsed time. Non-finite model output (or
            // injected garbage) invalidates the whole rollout.
            let clamped = raw_rollout.and_then(|outs| {
                let speed_per_unit =
                    sw.worker.speed_km_per_min * tamp_core::time::TIME_UNIT_MINUTES;
                let mut pts = Vec::with_capacity(outs.len());
                for (k, o) in outs.into_iter().enumerate() {
                    // Validate *before* clamping: `f64::clamp` would
                    // quietly pull an infinite coordinate onto the grid
                    // edge and launder it into a plausible point.
                    if !(o[0].is_finite() && o[1].is_finite()) {
                        return None;
                    }
                    let raw = workload.grid.clamp(workload.grid.denormalize(o[0], o[1]));
                    let max_range = speed_per_unit * (k + 1) as f64;
                    let d = current.dist(raw);
                    // `d == 0` (or a degenerate non-finite distance)
                    // must not reach `lerp` with a 0/0 ratio.
                    pts.push(if d.is_finite() && d > 0.0 && d > max_range {
                        current.lerp(raw, max_range / d)
                    } else {
                        raw
                    });
                }
                Some(pts)
            });
            let pts = match clamped {
                Some(pts) => {
                    if cacheable {
                        if let Some(cache) = cache {
                            let key = RolloutKey::new(observed.len(), current, cfg.predict_horizon);
                            cache.store(wi, key, pts.clone());
                        }
                    }
                    pts
                }
                None => {
                    // Persistence fallback: predict "stays where last
                    // seen" — crude, but never worse than no view. Not
                    // cached: the next window must re-attempt the model.
                    record.fallback_views += 1;
                    vec![current; cfg.predict_horizon]
                }
            };
            record.stages.rollout_s += rollout_start.elapsed().as_secs_f64();
            pts
        }
        None => Vec::new(),
    };

    Some(finish_view(sw, now, current, predicted, ctx.predictors, wi))
}

/// Assembles the [`WorkerView`] once the predicted trajectory is known
/// (computed or cache-served): ground-truth remainder of the day for
/// the acceptance simulation + UB oracle, validation MR, limits.
fn finish_view(
    sw: &tamp_sim::SimWorker,
    now: Minutes,
    current: Point,
    predicted: Vec<Point>,
    predictors: Option<&TrainedPredictors>,
    wi: usize,
) -> WorkerView {
    let real_future: Vec<TimedPoint> = sw
        .worker
        .real_routine
        .window(now, Minutes::new(f64::MAX))
        .to_vec();
    WorkerView {
        id: sw.worker.id,
        current,
        predicted,
        real_future,
        mr: predictors.map_or(0.0, |p| p.mrs[wi]),
        detour_limit_km: sw.worker.detour_limit_km,
        speed_km_per_min: sw.worker.speed_km_per_min,
    }
}

/// One round of intraday fine-tuning: each worker's model takes a few
/// clipped SGD steps on `(seq_in, seq_out)` windows drawn from their
/// location reports observed so far today.
///
/// Divergence guard: if a step produces a non-finite loss, gradient or
/// parameter (bad data, poisoning, numeric blow-up), the model is rolled
/// back to its offline checkpoint and *quarantined* — frozen for the
/// rest of the day. Returns the number of models newly quarantined.
fn online_adapt_round(
    ctx: &StepCtx<'_>,
    models: &mut [Seq2Seq],
    now: Minutes,
    oa: &OnlineAdaptConfig,
    round_idx: u64,
    quarantined: &mut [bool],
) -> usize {
    let cfg = ctx.cfg;
    let workload = ctx.workload;
    let seq_out = ctx.predictors.map_or(1, |p| p.seq_out.max(1));
    let mut newly_quarantined = 0;
    for (wi, sw) in workload.workers.iter().enumerate() {
        if quarantined[wi] {
            continue;
        }
        // Train on what the platform received, not on ground truth.
        let received;
        let observed: &[TimedPoint] = match (ctx.fplan, ctx.reports) {
            (Some(pl), _) => {
                received = pl.workers[wi].received_before(now);
                &received
            }
            (None, Some(logs)) => &logs[wi],
            (None, None) => sw.worker.real_routine.window(Minutes::ZERO, now),
        };
        if observed.len() < cfg.seq_in + seq_out {
            continue;
        }
        let mut pairs: Vec<(Vec<Pt2>, Vec<Pt2>)> = (0..=observed.len() - cfg.seq_in - seq_out)
            .map(|start| {
                let norm = |p: &TimedPoint| {
                    let (x, y) = workload.grid.normalize(p.loc);
                    [x, y]
                };
                let input = observed[start..start + cfg.seq_in]
                    .iter()
                    .map(norm)
                    .collect();
                let target = observed[start + cfg.seq_in..start + cfg.seq_in + seq_out]
                    .iter()
                    .map(norm)
                    .collect();
                (input, target)
            })
            .collect();
        if pairs.is_empty() {
            continue;
        }
        if ctx
            .fplan
            .is_some_and(|pl| pl.injector.adapt_poisoned(wi as u64, round_idx))
        {
            // Poisoned round: corrupted targets slipped into the online
            // training feed. The divergence guard below must catch the
            // resulting non-finite loss.
            for (_, target) in &mut pairs {
                for p in target.iter_mut() {
                    p[0] = f64::NAN;
                }
            }
        }
        let batch = TrainBatch::new(pairs);
        let model = &mut models[wi];
        let mut theta = model.params();
        let mut healthy = true;
        for _ in 0..oa.steps {
            model.set_params(&theta);
            let (loss, mut g) = model.loss_and_grad(&batch, &MseLoss);
            if !loss.is_finite() || g.iter().any(|v| !v.is_finite()) {
                healthy = false;
                break;
            }
            clip_grad_norm(&mut g, 1.0);
            for (p, gv) in theta.iter_mut().zip(&g) {
                *p -= oa.lr * gv;
            }
        }
        if healthy && theta.iter().all(|v| v.is_finite()) {
            model.set_params(&theta);
        } else {
            // Roll back to the offline checkpoint and stop adapting this
            // worker for the day.
            if let Some(p) = ctx.predictors {
                *model = p.models[wi].clone();
            }
            quarantined[wi] = true;
            newly_quarantined += 1;
            // Per-worker quarantine event: idx names the worker whose
            // model was rolled back this round.
            ctx.obs.count_idx("engine.quarantine", 1, Some(wi as u64));
        }
    }
    newly_quarantined
}

/// Number of batch windows in a workload's day (diagnostics).
pub fn n_batches(workload: &Workload, cfg: &EngineConfig) -> usize {
    (workload.horizon.as_f64() / cfg.batch_window_min).ceil() as usize
}

/// A convenient bundle: run every algorithm of Fig. 6 on one workload.
pub fn run_all_algorithms(
    workload: &Workload,
    with_loss: &TrainedPredictors,
    with_mse: &TrainedPredictors,
    cfg: &EngineConfig,
) -> Vec<(String, AssignmentMetrics)> {
    vec![
        (
            "UB".into(),
            run_assignment(workload, None, AssignmentAlgo::Ub, cfg),
        ),
        (
            "LB".into(),
            run_assignment(workload, None, AssignmentAlgo::Lb, cfg),
        ),
        (
            "PPI".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Ppi, cfg),
        ),
        (
            "PPI-loss".into(),
            run_assignment(workload, Some(with_mse), AssignmentAlgo::Ppi, cfg),
        ),
        (
            "KM".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Km, cfg),
        ),
        (
            "KM-loss".into(),
            run_assignment(workload, Some(with_mse), AssignmentAlgo::Km, cfg),
        ),
        (
            "GGPSO".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Ggpso, cfg),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_predictors, LossKind, PredictionAlgo, TrainingConfig};
    use tamp_meta::meta_training::MetaConfig;
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn tiny() -> Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 21).build()
    }

    fn quick_predictors(w: &Workload) -> TrainedPredictors {
        train_predictors(
            w,
            &TrainingConfig {
                algo: PredictionAlgo::Maml,
                loss: LossKind::Mse,
                hidden: 6,
                seq_in: 3,
                meta: MetaConfig {
                    iterations: 2,
                    ..MetaConfig::default()
                },
                adapt_steps: 2,
                seed: 9,
                ..TrainingConfig::default()
            },
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            seq_in: 3,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ub_completes_with_zero_rejections() {
        let w = tiny();
        let m = run_assignment(&w, None, AssignmentAlgo::Ub, &cfg());
        assert_eq!(m.rejected, 0, "UB checks real constraints");
        assert_eq!(m.rejection_ratio(), 0.0);
        assert!(m.completed > 0, "oracle should complete something");
        assert_eq!(m.completed, m.assigned_total);
    }

    #[test]
    fn metric_accounting_is_consistent() {
        let w = tiny();
        let p = quick_predictors(&w);
        for algo in [
            AssignmentAlgo::Ppi,
            AssignmentAlgo::Km,
            AssignmentAlgo::Lb,
            AssignmentAlgo::Ggpso,
        ] {
            let m = run_assignment(&w, Some(&p), algo, &cfg());
            assert_eq!(m.completed + m.rejected, m.assigned_total, "{algo:?}");
            assert!(m.completed <= m.tasks_total);
            assert!(m.completion_ratio() <= 1.0);
            assert!(m.rejection_ratio() <= 1.0);
            assert!(m.avg_worker_cost_km().is_finite());
        }
    }

    #[test]
    fn ub_dominates_lb_on_completion() {
        let w = tiny();
        let ub = run_assignment(&w, None, AssignmentAlgo::Ub, &cfg());
        let lb = run_assignment(&w, None, AssignmentAlgo::Lb, &cfg());
        assert!(
            ub.completion_ratio() >= lb.completion_ratio(),
            "UB {} must beat LB {}",
            ub.completion_ratio(),
            lb.completion_ratio()
        );
    }

    #[test]
    fn completed_detours_respect_limits() {
        let w = tiny();
        let p = quick_predictors(&w);
        let m = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &cfg());
        if m.completed > 0 {
            let avg = m.avg_worker_cost_km();
            let limit = w.workers[0].worker.detour_limit_km;
            assert!(avg <= limit, "avg detour {avg} exceeds limit {limit}");
        }
    }

    #[test]
    #[should_panic(expected = "needs trained predictors")]
    fn prediction_algorithms_require_predictors() {
        let w = tiny();
        run_assignment(&w, None, AssignmentAlgo::Ppi, &cfg());
    }

    #[test]
    fn n_batches_counts_windows() {
        let w = tiny(); // 24 units × 10 min = 240 min / 2 min = 120
        assert_eq!(n_batches(&w, &cfg()), 120);
    }

    #[test]
    fn task_conservation_holds_end_to_end() {
        // Every published task ends the day in exactly one bucket:
        // completed, expired unserved, or still pending at the horizon
        // (impossible here — all deadlines precede the end of day).
        let w = tiny();
        let p = quick_predictors(&w);
        let mut trace = Vec::new();
        let m = run_assignment_traced(&w, Some(&p), AssignmentAlgo::Ppi, &cfg(), &mut trace);
        let expired: usize = trace.iter().map(|r| r.expired).sum();
        assert_eq!(expired, m.tasks_expired);
        assert_eq!(
            m.completed + m.tasks_expired,
            m.tasks_total,
            "completed + expired must cover every published task"
        );
    }

    #[test]
    fn incremental_stepping_matches_one_shot() {
        // Drive EngineState by hand (the serve pattern) and compare
        // against the one-shot wrapper over the same workload.
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = cfg();
        let one_shot = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &cfg);

        let obs = Obs::null();
        let mut state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            obs: &obs,
        };
        let mut next = 0usize;
        while state.now() < w.horizon.as_f64() {
            let end = state.next_window_end(&cfg);
            let from = next;
            while next < w.tasks.len() && w.tasks[next].release.as_f64() < end {
                next += 1;
            }
            state.step_batch(&ctx, &w.tasks[from..next]);
        }
        let stepped = state.finish(&obs);
        assert_eq!(stepped.completed, one_shot.completed);
        assert_eq!(stepped.rejected, one_shot.rejected);
        assert_eq!(stepped.assigned_total, one_shot.assigned_total);
        assert_eq!(
            stepped.total_detour_km.to_bits(),
            one_shot.total_detour_km.to_bits()
        );
    }
}

//! Regenerates **Table VII** of the paper: the effect of seq_in and
//! seq_out on MAML / CTML / GTTAML-GT / GTTAML (workload 2).

use tamp_bench::{default_training, out_dir, print_seq, scale_from_env, seed_from_env};
use tamp_platform::experiments::{save_json, seq_sweep};
use tamp_sim::{WorkloadConfig, WorkloadKind};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Table VII: seq_in/seq_out sweep (workload 2, {} workers, seed {seed})",
        scale.n_workers
    );
    let rows = seq_sweep(
        || WorkloadConfig::new(WorkloadKind::GowallaFoursquare, scale, seed),
        &default_training(seed),
        &[1, 5, 10],
        &[1, 2, 3],
    );
    print_seq(&rows);
    save_json(
        &out_dir().join("table7.json"),
        "table7_seq_sweep_workload2",
        &rows,
    )
    .expect("write rows");
}

//! Behavioural tests of the batch engine's platform mechanics: refusal
//! memory, rejection cooldown, stale location reports, and busy-time
//! accounting.

use tamp_meta::meta_training::MetaConfig;
use tamp_platform::engine::n_batches;
use tamp_platform::{
    run_assignment, train_predictors, AssignmentAlgo, EngineConfig, LossKind, PredictionAlgo,
    TrainingConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_training(seed: u64) -> TrainingConfig {
    TrainingConfig {
        algo: PredictionAlgo::Maml,
        loss: LossKind::Mse,
        hidden: 6,
        seq_in: 3,
        meta: MetaConfig {
            iterations: 2,
            ..MetaConfig::default()
        },
        adapt_steps: 2,
        seed,
        ..TrainingConfig::default()
    }
}

fn engine() -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        ..EngineConfig::default()
    }
}

/// A worker is never asked twice about the same task, so the number of
/// proposals involving any (task, worker) pair is at most 1; hence
/// `assigned_total ≤ tasks × workers`.
#[test]
fn refusal_memory_bounds_total_proposals() {
    let w = tiny_workload(301);
    let p = train_predictors(&w, &quick_training(301));
    let m = run_assignment(&w, Some(&p), AssignmentAlgo::Lb, &engine());
    assert!(
        m.assigned_total <= w.tasks.len() * w.workers.len(),
        "{} proposals exceed the pair budget",
        m.assigned_total
    );
}

/// A longer rejection cooldown can only reduce (or keep) the number of
/// proposals made — cooled-down workers are out of the pool.
#[test]
fn cooldown_reduces_proposal_volume() {
    let w = tiny_workload(302);
    let p = train_predictors(&w, &quick_training(302));
    let short = run_assignment(
        &w,
        Some(&p),
        AssignmentAlgo::Km,
        &EngineConfig {
            rejection_cooldown_min: 0.0,
            ..engine()
        },
    );
    let long = run_assignment(
        &w,
        Some(&p),
        AssignmentAlgo::Km,
        &EngineConfig {
            rejection_cooldown_min: 60.0,
            ..engine()
        },
    );
    assert!(
        long.assigned_total <= short.assigned_total,
        "long cooldown proposed more: {} vs {}",
        long.assigned_total,
        short.assigned_total
    );
}

/// The UB oracle is insensitive to prediction-related knobs — it reads
/// real trajectories.
#[test]
fn ub_is_invariant_to_prediction_horizon() {
    let w = tiny_workload(303);
    let a = run_assignment(
        &w,
        None,
        AssignmentAlgo::Ub,
        &EngineConfig {
            predict_horizon: 1,
            ..engine()
        },
    );
    let b = run_assignment(
        &w,
        None,
        AssignmentAlgo::Ub,
        &EngineConfig {
            predict_horizon: 8,
            ..engine()
        },
    );
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.assigned_total, b.assigned_total);
}

/// Wider batch windows mean fewer batches.
#[test]
fn batch_window_controls_batch_count() {
    let w = tiny_workload(304);
    let two = n_batches(&w, &engine());
    let five = n_batches(
        &w,
        &EngineConfig {
            batch_window_min: 5.0,
            ..engine()
        },
    );
    assert!(five < two);
    assert_eq!(two, (w.horizon.as_f64() / 2.0).ceil() as usize);
}

/// Completed tasks never exceed published tasks, and detour accounting
/// stays within the per-task limit × completions.
#[test]
fn aggregate_detour_is_bounded() {
    let w = tiny_workload(305);
    let p = train_predictors(&w, &quick_training(305));
    for algo in [AssignmentAlgo::Ppi, AssignmentAlgo::Km, AssignmentAlgo::Lb] {
        let m = run_assignment(&w, Some(&p), algo, &engine());
        let limit = w.workers[0].worker.detour_limit_km;
        assert!(
            m.total_detour_km <= limit * m.completed as f64 + 1e-9,
            "{algo:?}"
        );
    }
}

/// The traced run returns identical aggregates to the untraced run, and
/// the per-batch records sum to them.
#[test]
fn trace_is_consistent_with_aggregates() {
    use tamp_platform::{run_assignment_traced, BatchRecord};
    let w = tiny_workload(306);
    let p = train_predictors(&w, &quick_training(306));
    let plain = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &engine());
    let mut trace: Vec<BatchRecord> = Vec::new();
    let traced = run_assignment_traced(&w, Some(&p), AssignmentAlgo::Ppi, &engine(), &mut trace);
    assert_eq!(plain.completed, traced.completed);
    assert_eq!(plain.assigned_total, traced.assigned_total);
    assert_eq!(plain.rejected, traced.rejected);

    assert_eq!(trace.len(), n_batches(&w, &engine()));
    let accepted: usize = trace.iter().map(|r| r.accepted).sum();
    let rejected: usize = trace.iter().map(|r| r.rejected).sum();
    let proposed: usize = trace.iter().map(|r| r.proposed).sum();
    assert_eq!(accepted, traced.completed);
    assert_eq!(rejected, traced.rejected);
    assert_eq!(proposed, traced.assigned_total);
    // Monotone time and bounded pools.
    for pair in trace.windows(2) {
        assert!(pair[0].t_min < pair[1].t_min);
    }
    for r in &trace {
        assert!(r.idle_workers <= w.workers.len());
        // A matching can't exceed either side of the bipartite graph.
        assert!(r.proposed <= r.pending);
        assert!(r.proposed <= r.idle_workers);
        assert_eq!(r.accepted + r.rejected, r.proposed);
    }
}

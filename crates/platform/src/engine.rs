//! The online batch assignment loop (Figure 1, "online task assignment").
//!
//! Time advances in 2-minute batch windows (Section IV-A). Each batch:
//!
//! 1. Newly released tasks join the pending pool; expired ones leave.
//! 2. Idle workers are snapshotted into [`WorkerView`]s: current
//!    location, the model's rollout of their next `predict_horizon` time
//!    units (from the last `seq_in` observed samples), and their
//!    validation `MR`.
//! 3. The configured assignment algorithm proposes a plan `M`.
//! 4. Each assigned worker accepts or rejects against their *real*
//!    itinerary ([`crate::acceptance`]); accepted tasks complete at the
//!    real detour cost, and the worker is busy until arrival.
//! 5. Rejected and unassigned tasks carry over to the next batch while
//!    still valid — the accumulation effect the paper describes for
//!    small detours.
//!
//! Two drivers share this loop:
//!
//! * the **one-shot** entry points below ([`run_assignment`] and
//!   friends) iterate a whole simulated day over a [`Workload`];
//! * the **incremental** API ([`EngineState`] + [`StepCtx`]) advances
//!   one batch window at a time, with tasks and worker reports supplied
//!   by the caller — this is what the long-running `tamp-serve` host
//!   drives, one [`EngineState`] per shard.
//!
//! Both produce byte-identical assignments given the same inputs; the
//! one-shot entry points are thin loops over [`EngineState::step_batch`].

use crate::acceptance::decide;
use crate::faults::{FaultConfig, FaultPlan, RolloutFault};
use crate::metrics::{AssignmentMetrics, BatchRecord};
use crate::predcache::{PredictionCache, RolloutKey};
use crate::training::TrainedPredictors;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use tamp_assign::baselines::{
    ggpso_assign_excluding, km_assign_excluding_with_solver, km_assign_indexed_with_solver,
    lb_assign_excluding, ub_assign_excluding, GgpsoParams,
};
use tamp_assign::ppi::{ppi_assign_observed_with_solver, PpiParams};
use tamp_assign::solver::{solver_for, MatchingSolver, SolverKind};
use tamp_assign::view::{ExcludedPairs, WorkerView};
use tamp_core::rng::{streams, PortableRng};
use tamp_core::EngineError;
use tamp_core::{Minutes, Point, SpatialTask, TaskId, TimedPoint, WorkerId, BATCH_WINDOW_MINUTES};
use tamp_nn::loss::Pt2;
use tamp_nn::{
    clip_grad_norm, predict_batch_into, BatchTape, BatchedRollout, DeltaWeights, KernelBackend,
    MseLoss, Seq2Seq, TrainBatch,
};
use tamp_obs::Obs;
use tamp_sim::Workload;

/// Which assignment algorithm the engine runs (the roster of Fig. 6–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignmentAlgo {
    /// Algorithm 4 (PPI).
    Ppi,
    /// Plain KM on predicted proximity.
    Km,
    /// The genetic baseline.
    Ggpso,
    /// Real-trajectory oracle (upper bound).
    Ub,
    /// Current-location only (lower bound).
    Lb,
}

/// Online continual-adaptation settings: the platform periodically
/// fine-tunes each worker's model on the movements observed *today*,
/// tracking intraday drift the offline stage could not see (an extension
/// beyond the paper's offline-only training — see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineAdaptConfig {
    /// Minutes between adaptation rounds.
    pub every_min: f64,
    /// SGD steps per round per worker.
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for OnlineAdaptConfig {
    fn default() -> Self {
        Self {
            every_min: 60.0,
            steps: 2,
            lr: 0.05,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Batch window length in minutes (paper: 2).
    pub batch_window_min: f64,
    /// Matching-rate radius `a` (km).
    pub a_km: f64,
    /// PPI stage-2 mini-batch size `ε`.
    pub epsilon: usize,
    /// How many future time units the models roll out per batch.
    pub predict_horizon: usize,
    /// Observed samples fed to the model (`seq_in`).
    pub seq_in: usize,
    /// GGPSO hyper-parameters.
    pub ggpso: GgpsoParams,
    /// Intraday model fine-tuning on observed movements; `None` keeps the
    /// offline models frozen (the paper's setting).
    pub online_adapt: Option<OnlineAdaptConfig>,
    /// How long a worker stays unavailable after rejecting an assignment,
    /// in minutes. Rejections cost the platform real capacity (the
    /// paper's motivation: rejections depress worker retention and
    /// participation), which is what makes low-rejection assignment
    /// valuable.
    pub rejection_cooldown_min: f64,
    /// RNG seed (GGPSO only).
    pub seed: u64,
    /// Prefilter candidate pairs through a spatial bucket index (PPI and
    /// the KM baseline). Assignments are byte-identical with or without
    /// it — the index only prunes pairs the feasibility predicates would
    /// reject anyway — so this exists to compare the two paths
    /// (`--no-index` on the CLI) and as an escape hatch.
    pub spatial_index: bool,
    /// Reuse each worker's model rollout across consecutive batch
    /// windows while its inputs are unchanged (see
    /// [`crate::predcache`]). Like the spatial index, this is a pure
    /// optimisation: assignments are byte-identical with or without it.
    /// Off by default so one-shot experiment runs measure the raw
    /// rollout cost; the serve layer turns it on.
    pub prediction_cache: bool,
    /// Matching backend for the PPI / KM bipartite solves. `Exact` (the
    /// default) is the dense O(n³) Hungarian oracle; `Auction` is the
    /// sparse sub-cubic forward auction with cross-window warm-started
    /// prices — same cardinality, weight within the ε-bound, no dense
    /// matrix. UB/LB/GGPSO ignore this (they are offline yardsticks or
    /// non-matching).
    pub solver: SolverKind,
    /// Arithmetic backend for model rollouts.
    /// [`KernelBackend::Scalar`] (the default) is bit-identical to the
    /// serial per-worker kernels; [`KernelBackend::Batched`]
    /// re-associates the batched GEMM reductions for throughput and is
    /// tolerance-gated (`kernel_rtol`) — a serving-only trade.
    pub kernel: KernelBackend,
    /// Maximum rollouts fused into one cross-worker GEMM group. `1`
    /// (the default) keeps the exact legacy serial rollout loop; `> 1`
    /// defers same-shaped healthy rollouts within a batch window and
    /// runs them as batched GEMMs over the shared base + delta weight
    /// store — byte-identical to serial under the scalar backend.
    pub rollout_batch: usize,
    /// Largest relative error the batched backend may show against
    /// the scalar rollout before the tolerance gate fires. Checked on
    /// one probe lane per batched group; exceedances are counted on the
    /// `engine.kernel.rtol_exceeded` telemetry counter.
    pub kernel_rtol: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            batch_window_min: BATCH_WINDOW_MINUTES,
            a_km: 0.4,
            epsilon: 8,
            predict_horizon: 4,
            seq_in: 5,
            ggpso: GgpsoParams::default(),
            online_adapt: None,
            rejection_cooldown_min: 10.0,
            seed: 0,
            spatial_index: true,
            prediction_cache: false,
            solver: SolverKind::Exact,
            kernel: KernelBackend::Scalar,
            rollout_batch: 1,
            kernel_rtol: 1e-9,
        }
    }
}

/// Runs one full simulated test day and returns the paper's four metrics.
///
/// `predictors` supplies per-worker models and matching rates; it may be
/// `None` only for the UB / LB baselines, which don't use predictions.
///
/// Panics on configuration errors (notably a prediction-based algorithm
/// without predictors); [`try_run_assignment`] is the fallible variant.
pub fn run_assignment(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
) -> AssignmentMetrics {
    try_run_assignment(workload, predictors, algo, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_assignment`], additionally recording one [`BatchRecord`]
/// per batch window into `trace` (for dashboards and load analysis).
pub fn run_assignment_traced(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    trace: &mut Vec<BatchRecord>,
) -> AssignmentMetrics {
    run_assignment_inner(
        workload,
        predictors,
        algo,
        cfg,
        None,
        Some(trace),
        &Obs::null(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_assignment`]: mis-wired configurations come
/// back as [`EngineError`] instead of a panic.
pub fn try_run_assignment(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(workload, predictors, algo, cfg, None, None, &Obs::null())
}

/// Runs a day under injected faults (see [`crate::faults`]). With
/// [`FaultConfig::none`] this is bit-identical to [`try_run_assignment`].
pub fn run_assignment_with_faults(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: &FaultConfig,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(
        workload,
        predictors,
        algo,
        cfg,
        Some(faults),
        None,
        &Obs::null(),
    )
}

/// [`run_assignment_with_faults`] with a per-batch trace.
pub fn run_assignment_with_faults_traced(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: &FaultConfig,
    trace: &mut Vec<BatchRecord>,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(
        workload,
        predictors,
        algo,
        cfg,
        Some(faults),
        Some(trace),
        &Obs::null(),
    )
}

/// The fully-general observed entry point: optional fault injection,
/// optional per-batch trace, and a telemetry handle (pass [`Obs::null`]
/// for none — that path is identical to the legacy entry points).
///
/// Per batch the engine emits one `engine.batch` span with nested
/// `engine.batch.{carry,snapshot,matching,acceptance}` stage spans (plus
/// `engine.adapt` on adaptation rounds), an `assign.<algo>` span around
/// the matcher, fault counters mirroring [`AssignmentMetrics`]
/// (`engine.fault.*`), and assignment-outcome counters
/// (`engine.assign.{proposed,accepted,rejected}`).
pub fn run_assignment_observed(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: Option<&FaultConfig>,
    trace: Option<&mut Vec<BatchRecord>>,
    obs: &Obs,
) -> Result<AssignmentMetrics, EngineError> {
    run_assignment_inner(workload, predictors, algo, cfg, faults, trace, obs)
}

/// Span name of the matcher stage for each algorithm.
fn algo_span_name(algo: AssignmentAlgo) -> &'static str {
    match algo {
        AssignmentAlgo::Ppi => "assign.ppi",
        AssignmentAlgo::Km => "assign.km",
        AssignmentAlgo::Ggpso => "assign.ggpso",
        AssignmentAlgo::Ub => "assign.ub",
        AssignmentAlgo::Lb => "assign.lb",
    }
}

/// Per-batch context for [`EngineState::step_batch`]: everything the
/// step needs that outlives the state itself.
///
/// `reports` is the serve path's observation source: per-worker logs of
/// the location reports *received* so far (indexed like
/// `workload.workers`). When present (and no fault plan is active) the
/// engine reads worker histories from these logs instead of from the
/// ground-truth routines — a log holding exactly the routine samples
/// before `now` reproduces the one-shot run bit for bit. A fault plan
/// takes precedence over `reports`: under fault injection the received
/// streams are defined by the plan.
pub struct StepCtx<'a> {
    /// The workload the engine serves (workers, tasks, grid, horizon).
    pub workload: &'a Workload,
    /// Trained per-worker predictors; `None` only for UB/LB.
    pub predictors: Option<&'a TrainedPredictors>,
    /// Assignment algorithm to run each batch.
    pub algo: AssignmentAlgo,
    /// Engine configuration.
    pub cfg: &'a EngineConfig,
    /// Active fault plan, if any.
    pub fplan: Option<&'a FaultPlan>,
    /// Per-worker received-report logs (the serve path); ignored while
    /// `fplan` is set.
    pub reports: Option<&'a [Vec<TimedPoint>]>,
    /// Degraded window (the serve layer's `DegradeToFallback` overload
    /// policy): every view uses the persistence fallback instead of a
    /// model rollout — counted in `fallback_views` — and the prediction
    /// cache is bypassed in both directions, exactly like a
    /// fault-injected rollout. `false` everywhere except overloaded
    /// serve windows.
    pub degrade: bool,
    /// Telemetry handle.
    pub obs: &'a Obs,
}

/// The engine's mutable cross-batch state, advanced one window at a
/// time by [`EngineState::step_batch`].
///
/// The one-shot entry points ([`run_assignment`] and friends) drive
/// this internally; the `tamp-serve` host owns one per shard and feeds
/// it tasks drained from its submission queue. Given the same sequence
/// of admitted tasks and the same observation source, stepping is
/// byte-identical to the one-shot loop.
pub struct EngineState {
    metrics: AssignmentMetrics,
    /// Online adaptation works on a private copy of the models so a run
    /// never mutates the shared offline predictors.
    live_models: Option<Vec<Seq2Seq>>,
    next_adapt: Option<f64>,
    pending: Vec<SpatialTask>,
    busy_until: HashMap<WorkerId, f64>,
    completed: HashSet<TaskId>,
    /// Pairs the worker already rejected; never proposed again (the
    /// platform remembers refusals across batches).
    refused: ExcludedPairs,
    /// Serializable so a snapshot resumes the GGPSO draw stream exactly.
    rng: PortableRng,
    /// Quarantine flags for divergent online-adapted models (once a
    /// model is rolled back to its offline checkpoint it stays frozen).
    quarantined: Vec<bool>,
    adapt_round: u64,
    batch_idx: u64,
    /// Start of the next batch window, minutes.
    t: f64,
    cache: Option<PredictionCache>,
    /// Matching backend (PPI / KM solves). The auction backend carries a
    /// cross-window warm-start price cache here; it is output-neutral
    /// (warm prices only accelerate the solve), so snapshots persist it
    /// but restoring without it is still byte-identical.
    solver: Box<dyn MatchingSolver>,
    /// Shared-base + per-worker-delta weight store backing batched
    /// rollouts (`cfg.rollout_batch > 1`). Built lazily on the first
    /// batched window and kept in sync by the adaptation / hot-swap
    /// hooks; never serialized — a restore rebuilds it from the models.
    rollout: Option<RolloutStore>,
    /// Reusable batched-rollout workspace (stacked GEMM buffers).
    tape: BatchTape,
}

impl EngineState {
    /// Validates the configuration and builds the initial state.
    ///
    /// Fails with [`EngineError::MissingPredictors`] when a
    /// prediction-based algorithm has no predictors and with
    /// [`EngineError::InvalidEngineConfig`] on a non-positive batch
    /// window.
    pub fn new(
        workload: &Workload,
        predictors: Option<&TrainedPredictors>,
        algo: AssignmentAlgo,
        cfg: &EngineConfig,
    ) -> Result<Self, EngineError> {
        if !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb) && predictors.is_none() {
            return Err(EngineError::MissingPredictors {
                algo: format!("{algo:?}"),
            });
        }
        if !cfg.batch_window_min.is_finite() || cfg.batch_window_min <= 0.0 {
            return Err(EngineError::InvalidEngineConfig(format!(
                "batch_window_min = {} must be finite and > 0",
                cfg.batch_window_min
            )));
        }
        if cfg.kernel == KernelBackend::Batched
            && !(cfg.kernel_rtol.is_finite() && cfg.kernel_rtol > 0.0)
        {
            return Err(EngineError::InvalidEngineConfig(format!(
                "kernel_rtol = {} must be finite and > 0 for the batched backend",
                cfg.kernel_rtol
            )));
        }
        let live_models = match (cfg.online_adapt, predictors) {
            (Some(_), Some(p)) => Some(p.models.clone()),
            _ => None,
        };
        Ok(Self {
            metrics: AssignmentMetrics {
                tasks_total: workload.tasks.len(),
                ..Default::default()
            },
            live_models,
            next_adapt: cfg.online_adapt.map(|oa| oa.every_min),
            pending: Vec::new(),
            busy_until: HashMap::new(),
            completed: HashSet::new(),
            refused: ExcludedPairs::new(),
            rng: PortableRng::for_stream(cfg.seed, streams::GENETIC),
            quarantined: vec![false; workload.workers.len()],
            adapt_round: 0,
            batch_idx: 0,
            t: 0.0,
            cache: cfg
                .prediction_cache
                .then(|| PredictionCache::new(workload.workers.len())),
            solver: solver_for(cfg.solver, matches!(cfg.solver, SolverKind::Auction)),
            rollout: None,
            tape: BatchTape::new(),
        })
    }

    /// Start of the next batch window, minutes since day start.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// End of the next batch window (`now + batch_window_min`) — the
    /// boundary a driver should drain submissions up to (exclusive)
    /// before calling [`EngineState::step_batch`].
    pub fn next_window_end(&self, cfg: &EngineConfig) -> f64 {
        self.t + cfg.batch_window_min
    }

    /// Batch windows stepped so far.
    pub fn batches_run(&self) -> u64 {
        self.batch_idx
    }

    /// Tasks currently live (admitted, unexpired, uncompleted).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative prediction-cache counters (zeros while the cache is
    /// disabled).
    pub fn cache_stats(&self) -> crate::predcache::CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Metrics accumulated so far (a run in progress; see
    /// [`EngineState::finish`] for the end-of-run version).
    pub fn metrics(&self) -> &AssignmentMetrics {
        &self.metrics
    }

    /// Captures the full replay-relevant state as a serializable,
    /// versioned [`EngineSnapshot`]. Restoring it with
    /// [`EngineState::restore`] and continuing the run is byte-identical
    /// to never having stopped (wall-clock stage timings excepted — they
    /// are measurements, not state). Unordered collections are sorted so
    /// the same state always serializes to the same bytes.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.snapshot_with(None)
    }

    /// Like [`EngineState::snapshot`], but when the offline `predictors`
    /// are supplied, live (online-adapted) models are written as sparse
    /// [`DeltaWeights`] against their offline checkpoints
    /// (`predictors.models[wi]`) instead of dense copies — usually a
    /// large size win, since intraday adaptation perturbs few models per
    /// window. Restoring such a snapshot reconstructs the dense models
    /// losslessly (the delta fit keeps every bitwise difference), but
    /// requires the same predictors to be supplied to
    /// [`EngineState::restore`].
    pub fn snapshot_with(&self, predictors: Option<&TrainedPredictors>) -> EngineSnapshot {
        let mut busy_until: Vec<(WorkerId, f64)> =
            self.busy_until.iter().map(|(k, v)| (*k, *v)).collect();
        busy_until.sort_by_key(|(id, _)| *id);
        let mut completed: Vec<TaskId> = self.completed.iter().copied().collect();
        completed.sort();
        let mut refused: Vec<(TaskId, WorkerId)> = self.refused.iter().copied().collect();
        refused.sort();
        let (live_models, live_deltas) = match (&self.live_models, predictors) {
            (Some(models), Some(p)) if p.models.len() == models.len() => {
                let deltas = models
                    .iter()
                    .zip(&p.models)
                    .map(|(m, base)| DeltaWeights::fit(&base.params(), &m.params(), 0.0))
                    .collect();
                (None, Some(deltas))
            }
            _ => (self.live_models.clone(), None),
        };
        EngineSnapshot {
            version: ENGINE_SNAPSHOT_VERSION,
            metrics: self.metrics,
            live_models,
            live_deltas,
            next_adapt: self.next_adapt,
            pending: self.pending.clone(),
            busy_until,
            completed,
            refused,
            rng: self.rng.clone(),
            quarantined: self.quarantined.clone(),
            adapt_round: self.adapt_round,
            batch_idx: self.batch_idx,
            t: self.t,
            cache: self.cache.clone(),
            solver_warm: self.solver.export_warm(),
        }
    }

    /// Rebuilds a mid-run state from a snapshot, validating the same
    /// invariants as [`EngineState::new`] plus snapshot shape (format
    /// version, per-worker vector lengths). The caller must supply the
    /// same workload, predictors, algorithm, and configuration as the
    /// run that produced the snapshot.
    pub fn restore(
        workload: &Workload,
        predictors: Option<&TrainedPredictors>,
        algo: AssignmentAlgo,
        cfg: &EngineConfig,
        snap: EngineSnapshot,
    ) -> Result<Self, EngineError> {
        // Re-run construction checks so a restore can never produce a
        // state `new` would have refused.
        let fresh = Self::new(workload, predictors, algo, cfg)?;
        // v1 snapshots (dense `live_models`, no `live_deltas`) restore
        // losslessly into this build; only unknown future formats are
        // refused.
        if snap.version == 0 || snap.version > ENGINE_SNAPSHOT_VERSION {
            return Err(EngineError::InvalidEngineConfig(format!(
                "engine snapshot version {} (this build reads 1..={ENGINE_SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        let live_models = match (snap.live_models, snap.live_deltas) {
            (Some(models), _) => Some(models),
            (None, Some(deltas)) => {
                let Some(p) = predictors else {
                    return Err(EngineError::InvalidEngineConfig(
                        "snapshot stores delta-compressed live models but no predictors were \
                         supplied"
                            .into(),
                    ));
                };
                if deltas.len() != p.models.len() {
                    return Err(EngineError::InvalidEngineConfig(format!(
                        "snapshot carries {} live-model deltas, predictors have {} models",
                        deltas.len(),
                        p.models.len()
                    )));
                }
                let mut models = Vec::with_capacity(deltas.len());
                for (base, d) in p.models.iter().zip(&deltas) {
                    let mut params = base.params();
                    if d.len() != params.len() {
                        return Err(EngineError::InvalidEngineConfig(format!(
                            "live-model delta covers {} parameters, the model has {}",
                            d.len(),
                            params.len()
                        )));
                    }
                    d.patch(&mut params);
                    let mut m = base.clone();
                    m.set_params(&params);
                    models.push(m);
                }
                Some(models)
            }
            (None, None) => None,
        };
        let n = workload.workers.len();
        if snap.quarantined.len() != n {
            return Err(EngineError::InvalidEngineConfig(format!(
                "snapshot quarantine flags cover {} workers, workload has {n}",
                snap.quarantined.len()
            )));
        }
        if live_models.is_some() != fresh.live_models.is_some() {
            return Err(EngineError::InvalidEngineConfig(
                "snapshot and configuration disagree on online adaptation".into(),
            ));
        }
        if let Some(models) = &live_models {
            if models.len() != n {
                return Err(EngineError::InvalidEngineConfig(format!(
                    "snapshot carries {} live models, workload has {n} workers",
                    models.len()
                )));
            }
        }
        if snap.cache.is_some() != fresh.cache.is_some() {
            return Err(EngineError::InvalidEngineConfig(
                "snapshot and configuration disagree on the prediction cache".into(),
            ));
        }
        let mut solver = fresh.solver;
        // Warm prices are output-neutral, so a legacy snapshot without
        // them (serde default: empty) restores to a byte-identical run —
        // the first batch just solves cold.
        solver.import_warm(snap.solver_warm);
        Ok(Self {
            metrics: snap.metrics,
            live_models,
            next_adapt: snap.next_adapt,
            pending: snap.pending,
            busy_until: snap.busy_until.into_iter().collect(),
            completed: snap.completed.into_iter().collect(),
            refused: snap.refused.into_iter().collect(),
            rng: snap.rng,
            quarantined: snap.quarantined,
            adapt_round: snap.adapt_round,
            batch_idx: snap.batch_idx,
            t: snap.t,
            cache: snap.cache,
            solver,
            rollout: None,
            tape: BatchTape::new(),
        })
    }

    /// Installs a replacement model for worker `wi` (predictor
    /// hot-swap): updates the live adapted copy if online adaptation is
    /// active, lifts any quarantine (the swapped-in model supersedes the
    /// divergent one — re-quarantine is up to future rounds), and bumps
    /// the worker's cache version so no stale rollout can be served.
    /// Returns whether a live cache entry was evicted. Callers that keep
    /// their own predictor set (the serve shard) must also replace
    /// `models[wi]` there — that copy serves rollouts when adaptation is
    /// off and is the rollback target for future quarantines.
    pub fn install_model(&mut self, wi: usize, model: &Seq2Seq) -> bool {
        if let Some(models) = self.live_models.as_mut() {
            if let Some(slot) = models.get_mut(wi) {
                *slot = model.clone();
            }
        }
        if let Some(q) = self.quarantined.get_mut(wi) {
            *q = false;
        }
        // Keep the batched weight store serving the swapped-in model.
        if let Some(store) = self.rollout.as_mut() {
            store.refit(wi, model);
        }
        self.cache.as_mut().is_some_and(|c| c.bump_version(wi))
    }

    /// `(resident payload bytes, workers carrying a non-empty delta)` of
    /// the batched-rollout weight store — the `serve.delta.{bytes,
    /// workers}` telemetry source. `None` until a batched window
    /// (`rollout_batch > 1`) has built the store.
    pub fn rollout_store_stats(&self) -> Option<(usize, usize)> {
        self.rollout.as_ref().map(|s| s.stats())
    }

    /// Advances one batch window. `admitted` are the tasks newly
    /// released into this window, in release order; expired ones are
    /// dropped (and counted) by the carry stage, so feeding a stale task
    /// is safe.
    pub fn step_batch(&mut self, ctx: &StepCtx<'_>, admitted: &[SpatialTask]) -> BatchRecord {
        let cfg = ctx.cfg;
        let obs = ctx.obs;
        let _batch_span = obs.span_idx("engine.batch", self.batch_idx);
        let now = Minutes::new(self.t + cfg.batch_window_min);
        // 1. Admit newly released tasks; drop expired ones.
        let carry_start = Instant::now();
        let carry_span = obs.span_idx("engine.batch.carry", self.batch_idx);
        self.pending.extend_from_slice(admitted);
        let completed = &self.completed;
        let mut expired = 0usize;
        self.pending.retain(|task| {
            let live = task.deadline.as_f64() > now.as_f64() && !completed.contains(&task.id);
            if !live && !completed.contains(&task.id) {
                expired += 1;
            }
            live
        });
        drop(carry_span);

        let mut record = BatchRecord {
            t_min: now.as_f64(),
            pending: self.pending.len(),
            expired,
            ..Default::default()
        };
        self.metrics.tasks_expired += expired;
        record.stages.carry_s = carry_start.elapsed().as_secs_f64();
        if let Some(pl) = ctx.fplan {
            record.dropped_reports = pl.dropped_in_window(self.t, now.as_f64());
            self.metrics.dropped_reports += record.dropped_reports;
            obs.count_idx(
                "engine.fault.dropped_reports",
                record.dropped_reports as u64,
                Some(self.batch_idx),
            );
        }
        obs.gauge_idx(
            "engine.batch.pending",
            record.pending as f64,
            Some(self.batch_idx),
        );

        if !self.pending.is_empty() {
            // 2. Snapshot idle workers. With `rollout_batch > 1` this
            // runs in two phases: `prepare_view` handles everything that
            // needs no model (cache hits, fault paths, degrade,
            // persistence fallbacks) and defers healthy rollouts, which
            // are then grouped by (base model, input length) and executed
            // as cross-worker GEMMs over the shared weight store. With
            // the default `rollout_batch = 1` each deferred rollout is
            // executed inline — the exact legacy serial path.
            let batched = cfg.rollout_batch > 1 && ctx.predictors.is_some();
            if batched && self.rollout.is_none() {
                let p = ctx.predictors.expect("batched rollouts require predictors");
                self.rollout = Some(RolloutStore::build(p, self.live_models.as_deref()));
            }
            let snapshot_start = Instant::now();
            let snapshot_span = obs.span_idx("engine.batch.snapshot", self.batch_idx);
            let mut slots: Vec<Option<WorkerView>> = Vec::new();
            let mut deferred: Vec<PendingRollout> = Vec::new();
            for (wi, sw) in ctx.workload.workers.iter().enumerate() {
                if self
                    .busy_until
                    .get(&sw.worker.id)
                    .copied()
                    .unwrap_or(f64::NEG_INFINITY)
                    > now.as_f64()
                {
                    continue;
                }
                // Offline workers are unreachable: no report stream, no
                // assignment proposals.
                if ctx
                    .fplan
                    .is_some_and(|pl| pl.workers[wi].is_offline(now.as_f64()))
                {
                    continue;
                }
                match prepare_view(
                    ctx,
                    wi,
                    slots.len(),
                    now,
                    self.batch_idx,
                    &mut record,
                    self.cache.as_mut(),
                ) {
                    None => {}
                    Some(Prepared::Done(view)) => slots.push(Some(view)),
                    Some(Prepared::Rollout(p)) => {
                        if batched {
                            slots.push(None);
                            deferred.push(p);
                        } else {
                            let pred = ctx.predictors.expect("rollout requires predictors");
                            let model = self
                                .live_models
                                .as_deref()
                                .map_or(&pred.models[p.wi], |ms| &ms[p.wi]);
                            let raw = model.predict(&p.input, cfg.predict_horizon);
                            let view = complete_rollout(
                                ctx,
                                p.wi,
                                p.current,
                                p.observed_len,
                                Some(raw),
                                true,
                                now,
                                &mut record,
                                self.cache.as_mut(),
                            );
                            record.stages.rollout_s += p.started.elapsed().as_secs_f64();
                            slots.push(Some(view));
                        }
                    }
                }
            }
            if !deferred.is_empty() {
                let group_start = Instant::now();
                let store = self.rollout.as_mut().expect("store built before deferring");
                // Plan the GEMM groups by (cluster-head base, prefix
                // length); the planner's key-ordered iteration keeps
                // group execution deterministic.
                let mut plan = BatchedRollout::new();
                for (di, p) in deferred.iter().enumerate() {
                    plan.push(di, store.head_of[p.wi], p.input.len());
                }
                let mut outs: Vec<Vec<Pt2>> = Vec::new();
                plan.for_each_batch(cfg.rollout_batch, |head, chunk| {
                    let base = &store.bases[head];
                    let deltas: Vec<Option<&DeltaWeights>> = chunk
                        .iter()
                        .map(|&di| {
                            let d = &store.deltas[deferred[di].wi];
                            (!d.is_empty()).then_some(d)
                        })
                        .collect();
                    let inputs: Vec<&[Pt2]> = chunk
                        .iter()
                        .map(|&di| deferred[di].input.as_slice())
                        .collect();
                    predict_batch_into(
                        base,
                        &deltas,
                        &inputs,
                        cfg.predict_horizon,
                        cfg.kernel,
                        &mut self.tape,
                        &mut outs,
                    );
                    if cfg.kernel == KernelBackend::Batched {
                        // Tolerance gate: one probe lane per group is
                        // recomputed serially and compared.
                        let p0 = &deferred[chunk[0]];
                        let serial = store
                            .model_for(p0.wi)
                            .predict(&p0.input, cfg.predict_horizon);
                        let mut worst = 0.0f64;
                        for (a, b) in serial.iter().zip(&outs[0]) {
                            for k in 0..2 {
                                let denom = a[k].abs().max(1e-12);
                                worst = worst.max((a[k] - b[k]).abs() / denom);
                            }
                        }
                        // NaN in the probe must trip the gate too.
                        if worst.is_nan() || worst > cfg.kernel_rtol {
                            obs.count_idx("engine.kernel.rtol_exceeded", 1, Some(self.batch_idx));
                        }
                    }
                    for (k, &di) in chunk.iter().enumerate() {
                        let p = &deferred[di];
                        let raw = std::mem::take(&mut outs[k]);
                        let view = complete_rollout(
                            ctx,
                            p.wi,
                            p.current,
                            p.observed_len,
                            Some(raw),
                            true,
                            now,
                            &mut record,
                            self.cache.as_mut(),
                        );
                        slots[p.slot] = Some(view);
                    }
                });
                record.stages.rollout_s += group_start.elapsed().as_secs_f64();
                let (gemm_groups, gemm_lanes) = self.tape.take_stats();
                if gemm_groups > 0 {
                    obs.count_idx("nn.batch.groups", gemm_groups, Some(self.batch_idx));
                    obs.count_idx("nn.batch.size", gemm_lanes, Some(self.batch_idx));
                }
            }
            let views: Vec<WorkerView> = slots.into_iter().flatten().collect();
            drop(snapshot_span);
            record.stages.snapshot_s = snapshot_start.elapsed().as_secs_f64();
            self.metrics.fallback_views += record.fallback_views;
            obs.count_idx(
                "engine.fault.fallback_views",
                record.fallback_views as u64,
                Some(self.batch_idx),
            );

            record.idle_workers = views.len();
            obs.gauge_idx(
                "engine.batch.idle_workers",
                record.idle_workers as f64,
                Some(self.batch_idx),
            );
            if !views.is_empty() {
                // 3. Assign.
                let start = Instant::now();
                let matching_span = obs.span_idx("engine.batch.matching", self.batch_idx);
                let algo_span = obs.span_idx(algo_span_name(ctx.algo), self.batch_idx);
                let plan = match ctx.algo {
                    AssignmentAlgo::Ppi => ppi_assign_observed_with_solver(
                        &self.pending,
                        &views,
                        &PpiParams {
                            a_km: cfg.a_km,
                            epsilon: cfg.epsilon,
                            now,
                            use_index: cfg.spatial_index,
                        },
                        &self.refused,
                        obs,
                        &mut *self.solver,
                    ),
                    AssignmentAlgo::Km if cfg.spatial_index => km_assign_indexed_with_solver(
                        &self.pending,
                        &views,
                        now,
                        &self.refused,
                        &mut *self.solver,
                    ),
                    AssignmentAlgo::Km => km_assign_excluding_with_solver(
                        &self.pending,
                        &views,
                        now,
                        &self.refused,
                        &mut *self.solver,
                    ),
                    AssignmentAlgo::Ggpso => ggpso_assign_excluding(
                        &self.pending,
                        &views,
                        now,
                        &cfg.ggpso,
                        &self.refused,
                        &mut self.rng,
                    ),
                    AssignmentAlgo::Ub => {
                        ub_assign_excluding(&self.pending, &views, now, &self.refused)
                    }
                    AssignmentAlgo::Lb => {
                        lb_assign_excluding(&self.pending, &views, now, &self.refused)
                    }
                };
                drop(algo_span);
                drop(matching_span);
                record.stages.matching_s = start.elapsed().as_secs_f64();
                self.metrics.algo_seconds += record.stages.matching_s;

                // Per-batch backend work counters (UB/LB/GGPSO don't use
                // the pluggable solver, so their stats stay zero and emit
                // nothing).
                let sstats = self.solver.take_stats();
                if sstats.solves > 0 {
                    let idx = Some(self.batch_idx);
                    obs.count_idx("solver.components", sstats.components, idx);
                    obs.count_idx("solver.augmented_rows", sstats.augmented_rows, idx);
                    obs.count_idx("solver.bids", sstats.bids, idx);
                    obs.count_idx("solver.phases", sstats.phases, idx);
                    obs.count_idx("solver.warm.hits", sstats.warm_hits, idx);
                    obs.count_idx("solver.warm.misses", sstats.warm_misses, idx);
                    obs.count_idx("solver.cold_restarts", sstats.cold_restarts, idx);
                    obs.count_idx("solver.abandoned", sstats.abandoned, idx);
                    obs.gauge_idx(
                        "solver.peak_dense_bytes",
                        sstats.peak_dense_bytes as f64,
                        idx,
                    );
                    obs.gauge_idx(
                        "solver.peak_sparse_bytes",
                        sstats.peak_sparse_bytes as f64,
                        idx,
                    );
                }

                // 4. Acceptance against real itineraries. Id → snapshot
                // maps are built once per batch so each proposed pair
                // resolves in O(1) instead of scanning the batch.
                let acceptance_start = Instant::now();
                let acceptance_span = obs.span_idx("engine.batch.acceptance", self.batch_idx);
                let task_by_id: HashMap<_, _> = self.pending.iter().map(|tk| (tk.id, tk)).collect();
                let view_by_id: HashMap<_, _> = views.iter().map(|v| (v.id, v)).collect();
                record.proposed = plan.len();
                for pair in plan.pairs() {
                    self.metrics.assigned_total += 1;
                    // An algorithm handing back a pair that references a
                    // task or worker outside this batch's snapshot is a
                    // bug in that algorithm — but not one worth killing
                    // the whole day's assignment loop for. Skip and
                    // count it (`completed + rejected + invalid_pairs ==
                    // assigned_total` stays an invariant).
                    let Some(task) = task_by_id.get(&pair.task).map(|tk| **tk) else {
                        self.metrics.invalid_pairs += 1;
                        record.invalid_pairs += 1;
                        continue;
                    };
                    let Some(&view) = view_by_id.get(&pair.worker) else {
                        self.metrics.invalid_pairs += 1;
                        record.invalid_pairs += 1;
                        continue;
                    };
                    match decide(
                        &view.real_future,
                        view.detour_limit_km,
                        view.speed_km_per_min,
                        &task,
                        now,
                    ) {
                        Some((detour, _arrival)) => {
                            record.accepted += 1;
                            self.metrics.completed += 1;
                            self.metrics.total_detour_km += detour;
                            self.completed.insert(task.id);
                            // The worker is occupied for the time the
                            // extra travel takes (they keep following
                            // their routine otherwise), at least one
                            // batch window.
                            let busy_min =
                                tamp_core::time::travel_minutes(detour, view.speed_km_per_min)
                                    .max(cfg.batch_window_min);
                            self.busy_until.insert(pair.worker, now.as_f64() + busy_min);
                        }
                        None => {
                            record.rejected += 1;
                            self.metrics.rejected += 1;
                            // Task stays pending (carried to next batch)
                            // but this worker won't be asked again, and
                            // they disengage for a while.
                            self.refused.insert((task.id, pair.worker));
                            self.busy_until
                                .insert(pair.worker, now.as_f64() + cfg.rejection_cooldown_min);
                        }
                    }
                }
                let completed = &self.completed;
                self.pending.retain(|task| !completed.contains(&task.id));
                drop(acceptance_span);
                record.stages.acceptance_s = acceptance_start.elapsed().as_secs_f64();
                obs.count_idx(
                    "engine.assign.proposed",
                    record.proposed as u64,
                    Some(self.batch_idx),
                );
                obs.count_idx(
                    "engine.assign.accepted",
                    record.accepted as u64,
                    Some(self.batch_idx),
                );
                obs.count_idx(
                    "engine.assign.rejected",
                    record.rejected as u64,
                    Some(self.batch_idx),
                );
                obs.count_idx(
                    "engine.fault.invalid_pairs",
                    record.invalid_pairs as u64,
                    Some(self.batch_idx),
                );
            }
        }
        // Periodic intraday fine-tuning on the day's observations so far.
        if let (Some(oa), Some(models)) = (cfg.online_adapt, self.live_models.as_mut()) {
            if let Some(due) = self.next_adapt {
                if now.as_f64() >= due {
                    let adapt_start = Instant::now();
                    let adapt_span = obs.span_idx("engine.adapt", self.adapt_round);
                    let outcome = online_adapt_round(
                        ctx,
                        models,
                        now,
                        &oa,
                        self.adapt_round,
                        &mut self.quarantined,
                    );
                    drop(adapt_span);
                    record.stages.adapt_s = adapt_start.elapsed().as_secs_f64();
                    record.quarantined_models = outcome.newly_quarantined;
                    self.metrics.quarantined_models += outcome.newly_quarantined;
                    obs.count_idx(
                        "engine.fault.quarantined_models",
                        outcome.newly_quarantined as u64,
                        Some(self.adapt_round),
                    );
                    self.adapt_round += 1;
                    self.next_adapt = Some(due + oa.every_min);
                    // Re-fit the touched workers' deltas so the batched
                    // weight store keeps serving the adapted parameters.
                    if let Some(store) = self.rollout.as_mut() {
                        for &wi in &outcome.changed {
                            store.refit(wi, &models[wi]);
                        }
                    }
                    // Only the models this round actually touched
                    // (gradient step or rollback) have stale rollouts;
                    // bumping their cache versions evicts exactly those,
                    // leaving skipped workers' entries live.
                    if let Some(cache) = &mut self.cache {
                        let mut dropped = 0usize;
                        for &wi in &outcome.changed {
                            if cache.bump_version(wi) {
                                dropped += 1;
                            }
                        }
                        record.cache_invalidations = dropped;
                    }
                }
            }
        }
        self.metrics.cache_hits += record.cache_hits;
        self.metrics.cache_misses += record.cache_misses;
        self.metrics.cache_invalidations += record.cache_invalidations;
        self.metrics.stages.add(&record.stages);
        self.t += cfg.batch_window_min;
        self.batch_idx += 1;
        record
    }

    /// Ends the run: fills the backward-compatible `algo_seconds` alias,
    /// flushes telemetry, and returns the accumulated metrics.
    pub fn finish(mut self, obs: &Obs) -> AssignmentMetrics {
        self.metrics.stages.matching_s = self.metrics.algo_seconds;
        obs.flush();
        self.metrics
    }
}

/// Format version written into every [`EngineSnapshot`]; bump on any
/// incompatible change so a restore fails loudly instead of replaying
/// garbage. v2 added optional delta-compressed live models
/// (`live_deltas`); v1 snapshots still restore losslessly.
pub const ENGINE_SNAPSHOT_VERSION: u32 = 2;

/// A versioned, self-describing serialization of [`EngineState`] —
/// everything that determines the rest of the replay: accumulated
/// metrics, the live (online-adapted) models, the pending task pool,
/// worker busy/refusal/quarantine bookkeeping, the GGPSO RNG state, and
/// the prediction cache (entries, per-worker versions, and counters, so
/// a restored run's cache statistics also match the uninterrupted run).
///
/// Produced by [`EngineState::snapshot`], consumed by
/// [`EngineState::restore`]. All fields are plain serde data; the
/// `tamp-serve` shard wraps this in its own snapshot with the
/// queue/stream/log state the engine does not own.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Snapshot format version ([`ENGINE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Metrics accumulated so far.
    pub metrics: AssignmentMetrics,
    /// Online-adapted model copies (`None` when adaptation is off or
    /// the snapshot stores them delta-compressed — see `live_deltas`).
    pub live_models: Option<Vec<Seq2Seq>>,
    /// Delta-compressed live models: per-worker parameter overrides
    /// against the offline checkpoints (`predictors.models[wi]`),
    /// written by [`EngineState::snapshot_with`] when the caller
    /// supplies the predictors. At most one of `live_models` /
    /// `live_deltas` is `Some`. Absent from v1 snapshots (serde
    /// default), which carry dense `live_models` instead — both restore
    /// losslessly.
    #[serde(default)]
    pub live_deltas: Option<Vec<DeltaWeights>>,
    /// Next adaptation due time, minutes.
    pub next_adapt: Option<f64>,
    /// Live (admitted, unexpired, uncompleted) tasks.
    pub pending: Vec<SpatialTask>,
    /// Busy-until times, sorted by worker id for stable bytes.
    pub busy_until: Vec<(WorkerId, f64)>,
    /// Completed task ids, sorted.
    pub completed: Vec<TaskId>,
    /// Refused (task, worker) pairs, sorted.
    pub refused: Vec<(TaskId, WorkerId)>,
    /// GGPSO draw-stream state.
    pub rng: PortableRng,
    /// Per-worker quarantine flags.
    pub quarantined: Vec<bool>,
    /// Adaptation rounds completed.
    pub adapt_round: u64,
    /// Batch windows stepped.
    pub batch_idx: u64,
    /// Start of the next batch window, minutes.
    pub t: f64,
    /// The prediction cache, entries and counters included.
    pub cache: Option<PredictionCache>,
    /// The matching backend's warm-start price cache (auction backend
    /// only; empty for the exact backend). Output-neutral: a snapshot
    /// missing this field (older format) restores byte-identically, the
    /// first post-restore batch just solves cold.
    #[serde(default)]
    pub solver_warm: Vec<(u64, Vec<f64>)>,
}

#[allow(clippy::too_many_arguments)]
fn run_assignment_inner(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    faults: Option<&FaultConfig>,
    mut trace: Option<&mut Vec<BatchRecord>>,
    obs: &Obs,
) -> Result<AssignmentMetrics, EngineError> {
    let mut state = EngineState::new(workload, predictors, algo, cfg)?;
    if let Some(fc) = faults {
        fc.validate().map_err(EngineError::InvalidEngineConfig)?;
    }
    // A fault layer with no engine-level faults takes the exact legacy
    // code paths: `FaultConfig::none()` — and a crash-only
    // configuration, whose fault lives in the serve layer — must
    // reproduce a clean run bit for bit.
    let fplan: Option<FaultPlan> = faults
        .filter(|fc| fc.has_engine_faults())
        .map(|fc| FaultPlan::build(workload, fc));
    let ctx = StepCtx {
        workload,
        predictors,
        algo,
        cfg,
        fplan: fplan.as_ref(),
        reports: None,
        degrade: false,
        obs,
    };

    let horizon = workload.horizon.as_f64();
    let mut next_task = 0usize;
    let mut admitted: Vec<SpatialTask> = Vec::new();
    while state.now() < horizon {
        let window_end = state.next_window_end(cfg);
        admitted.clear();
        while next_task < workload.tasks.len()
            && workload.tasks[next_task].release.as_f64() < window_end
        {
            admitted.push(workload.tasks[next_task]);
            next_task += 1;
        }
        let record = state.step_batch(&ctx, &admitted);
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(record);
        }
    }
    Ok(state.finish(obs))
}

/// Result of [`prepare_view`]: either a finished view (no model rollout
/// needed, or one that had to run inline), or a healthy rollout deferred
/// for batched execution.
enum Prepared {
    /// View completed without deferring.
    Done(WorkerView),
    /// A healthy model rollout whose execution the caller schedules —
    /// inline (serial mode) or as a lane of a cross-worker GEMM group.
    Rollout(PendingRollout),
}

/// A deferred healthy rollout: everything [`complete_rollout`] needs
/// once the raw model output is available.
struct PendingRollout {
    /// Worker index.
    wi: usize,
    /// Position in the batch's view slot vector (restores worker order
    /// after grouped execution).
    slot: usize,
    /// Anchor location (last received report or registered position).
    current: Point,
    /// Observed-prefix length (the cache key component).
    observed_len: usize,
    /// Normalized model input window.
    input: Vec<Pt2>,
    /// When the rollout stage started for this worker (serial timing).
    started: Instant,
}

/// Shared-base + per-worker-delta representation of the fleet's models:
/// one dense [`Seq2Seq`] per distinct cluster head plus a sparse
/// [`DeltaWeights`] per worker. Patching a base with a worker's delta
/// reconstructs that worker's live parameters bit for bit (the fit keeps
/// every bitwise difference), which is what lets the batched scalar
/// rollout stay byte-identical to the serial path.
struct RolloutStore {
    /// Distinct base models (cluster heads; one per worker when the
    /// predictor file predates head tracking).
    bases: Vec<Seq2Seq>,
    /// Cached dense parameters of each base (delta fits and refits).
    base_params: Vec<Vec<f64>>,
    /// `head_of[wi]` — which base worker `wi`'s delta applies to.
    head_of: Vec<usize>,
    /// Per-worker overrides turning the base into the live model.
    deltas: Vec<DeltaWeights>,
    /// Scratch model for serial reconstructions (tolerance gate).
    scratch: Option<Seq2Seq>,
    scratch_params: Vec<f64>,
}

impl RolloutStore {
    /// Builds the store for the current effective models (`live` when
    /// online adaptation is on, the offline predictors otherwise). Falls
    /// back to one base per worker with empty deltas when the predictor
    /// set carries no usable cluster heads.
    fn build(p: &TrainedPredictors, live: Option<&[Seq2Seq]>) -> Self {
        let models: &[Seq2Seq] = live.unwrap_or(&p.models);
        let n = models.len();
        let n_params = models.first().map_or(0, |m| m.params().len());
        let use_heads = n > 0
            && !p.heads.is_empty()
            && p.head_of.len() == n
            && p.head_of.iter().all(|&h| h < p.heads.len())
            && p.heads.iter().all(|h| h.len() == n_params);
        let (bases, head_of): (Vec<Seq2Seq>, Vec<usize>) = if use_heads {
            let template = &models[0];
            let bases = p
                .heads
                .iter()
                .map(|h| {
                    let mut b = template.clone();
                    b.set_params(h);
                    b
                })
                .collect();
            (bases, p.head_of.clone())
        } else {
            (models.to_vec(), (0..n).collect())
        };
        let base_params: Vec<Vec<f64>> = bases.iter().map(|b| b.params()).collect();
        let deltas = models
            .iter()
            .enumerate()
            .map(|(wi, m)| DeltaWeights::fit(&base_params[head_of[wi]], &m.params(), 0.0))
            .collect();
        Self {
            bases,
            base_params,
            head_of,
            deltas,
            scratch: None,
            scratch_params: Vec::new(),
        }
    }

    /// Re-fits worker `wi`'s delta after its live model changed (an
    /// adaptation step, quarantine rollback, or hot-swap).
    fn refit(&mut self, wi: usize, model: &Seq2Seq) {
        if wi < self.deltas.len() {
            let head = self.head_of[wi];
            self.deltas[wi] = DeltaWeights::fit(&self.base_params[head], &model.params(), 0.0);
        }
    }

    /// `(resident payload bytes, workers with a non-empty delta)`.
    fn stats(&self) -> (usize, usize) {
        let base_bytes: usize = self.base_params.iter().map(|p| p.len() * 8).sum();
        let delta_bytes: usize = self.deltas.iter().map(|d| d.resident_bytes()).sum();
        let delta_workers = self.deltas.iter().filter(|d| !d.is_empty()).count();
        (base_bytes + delta_bytes, delta_workers)
    }

    /// Serial reconstruction of worker `wi`'s model (the tolerance
    /// gate's reference); returns the base itself for empty deltas.
    fn model_for(&mut self, wi: usize) -> &Seq2Seq {
        let head = self.head_of[wi];
        let d = &self.deltas[wi];
        if d.is_empty() {
            return &self.bases[head];
        }
        d.apply(&self.base_params[head], &mut self.scratch_params);
        let scratch = self.scratch.get_or_insert_with(|| self.bases[head].clone());
        scratch.set_params(&self.scratch_params);
        scratch
    }
}

/// First phase of building the worker view the assignment algorithms
/// see at time `now`: everything that needs no model forward pass.
/// Healthy rollouts come back as [`Prepared::Rollout`] for the caller to
/// execute (inline or batched); cache hits, fault-injected rollouts,
/// degraded windows, and no-predictor baselines complete immediately.
///
/// Under fault injection the view degrades gracefully instead of dying
/// (the "degradation ladder", DESIGN.md):
///
/// 1. model rollout over the *received* report stream (the normal path);
/// 2. if the rollout fails or any output is non-finite — a persistence
///    forecast from the last received report (`fallback_views`);
/// 3. if no report was ever received from a worker who should have been
///    heard from — exclude the worker from this batch entirely.
///
/// With a [`PredictionCache`], healthy rollouts whose inputs are
/// unchanged since the previous window are served from the cache
/// (`cache_hits` on the record); fault-injected and failed rollouts
/// bypass it (see [`crate::predcache`] for the invariant).
fn prepare_view(
    ctx: &StepCtx<'_>,
    wi: usize,
    slot: usize,
    now: Minutes,
    batch_idx: u64,
    record: &mut BatchRecord,
    mut cache: Option<&mut PredictionCache>,
) -> Option<Prepared> {
    let cfg = ctx.cfg;
    let workload = ctx.workload;
    let sw = &workload.workers[wi];

    // Observed history so far today: the worker's periodic location
    // reports (one per 10-minute time unit). The platform never sees the
    // worker between reports — "when they are online, they merely share
    // their current location" (Section II) — so the freshest information
    // any algorithm has is the *last report*, which may be up to one time
    // unit stale. This is precisely the gap mobility prediction fills.
    // Under fault injection only *received* reports count; on the serve
    // path the received stream is the shard's report log.
    let observed: Vec<Point> = match (ctx.fplan, ctx.reports) {
        (Some(pl), _) => pl.workers[wi]
            .received_before(now)
            .iter()
            .map(|p| p.loc)
            .collect(),
        (None, Some(logs)) => logs[wi].iter().map(|p| p.loc).collect(),
        (None, None) => sw
            .worker
            .real_routine
            .window(Minutes::ZERO, now)
            .iter()
            .map(|p| p.loc)
            .collect(),
    };
    let current = match observed.last().copied() {
        Some(c) => c,
        None => {
            if ctx
                .fplan
                .is_some_and(|pl| pl.workers[wi].any_report_before(now))
            {
                // Every report so far was lost: the platform has no idea
                // where this worker is. Bottom rung: exclude them.
                return None;
            }
            // No report was *due* yet (start of day): fall back to the
            // worker's registered day-start position, as before.
            sw.worker.location_at(now)?
        }
    };

    let predicted = match ctx.predictors {
        Some(_) if ctx.degrade => {
            // Overloaded window (serve's `DegradeToFallback` policy):
            // skip the model entirely and serve the persistence view —
            // the same bottom-rung forecast as a failed rollout. The
            // cache is bypassed in both directions because this output
            // does not correspond to any rollout key.
            record.fallback_views += 1;
            vec![current; cfg.predict_horizon]
        }
        Some(_) => {
            let rollout_start = Instant::now();
            let rollout = ctx.fplan.map_or(RolloutFault::Healthy, |pl| {
                pl.injector.rollout(wi as u64, batch_idx)
            });
            // Cross-batch reuse: a healthy rollout is a pure function of
            // the cache key, so a matching entry from a previous window
            // is byte-identical to recomputing. Fault-injected rollouts
            // depend on the batch index and bypass the cache.
            let cacheable = matches!(rollout, RolloutFault::Healthy);
            if cacheable {
                if let Some(cache) = cache.as_deref_mut() {
                    // The worker's model version is part of the key, so
                    // an adaptation step or hot-swap (which bumps the
                    // version) makes every older entry unmatchable.
                    let key = RolloutKey::new(
                        observed.len(),
                        current,
                        cfg.predict_horizon,
                        cache.version(wi),
                    );
                    if let Some(pts) = cache.lookup(wi, &key) {
                        record.cache_hits += 1;
                        record.stages.rollout_s += rollout_start.elapsed().as_secs_f64();
                        return Some(Prepared::Done(finish_view(
                            sw,
                            now,
                            current,
                            pts,
                            ctx.predictors,
                            wi,
                        )));
                    }
                    record.cache_misses += 1;
                }
            }
            let mut input: Vec<[f64; 2]> = observed
                .iter()
                .rev()
                .take(cfg.seq_in)
                .rev()
                .map(|pt| {
                    let (x, y) = workload.grid.normalize(*pt);
                    [x, y]
                })
                .collect();
            if input.is_empty() {
                let (x, y) = workload.grid.normalize(current);
                input.push([x, y]);
            }
            match rollout {
                RolloutFault::Healthy => {
                    return Some(Prepared::Rollout(PendingRollout {
                        wi,
                        slot,
                        current,
                        observed_len: observed.len(),
                        input,
                        started: rollout_start,
                    }));
                }
                RolloutFault::Unavailable => {
                    let view = complete_rollout(
                        ctx,
                        wi,
                        current,
                        observed.len(),
                        None,
                        false,
                        now,
                        record,
                        cache,
                    );
                    record.stages.rollout_s += rollout_start.elapsed().as_secs_f64();
                    return Some(Prepared::Done(view));
                }
                RolloutFault::Garbage => {
                    let raw = ctx.fplan.unwrap().injector.garbage_rollout(
                        wi as u64,
                        batch_idx,
                        cfg.predict_horizon,
                    );
                    let view = complete_rollout(
                        ctx,
                        wi,
                        current,
                        observed.len(),
                        Some(raw),
                        false,
                        now,
                        record,
                        cache,
                    );
                    record.stages.rollout_s += rollout_start.elapsed().as_secs_f64();
                    return Some(Prepared::Done(view));
                }
            }
        }
        None => Vec::new(),
    };

    Some(Prepared::Done(finish_view(
        sw,
        now,
        current,
        predicted,
        ctx.predictors,
        wi,
    )))
}

/// Second phase: turns a raw model output (`None` for an unavailable
/// rollout) into the finished [`WorkerView`] — grid/reachability
/// clamping, non-finite validation, cache store for healthy
/// (`cacheable`) rollouts, persistence fallback otherwise. This is the
/// exact post-rollout tail of the legacy single-pass view builder, so
/// serial and batched execution share one code path.
#[allow(clippy::too_many_arguments)]
fn complete_rollout(
    ctx: &StepCtx<'_>,
    wi: usize,
    current: Point,
    observed_len: usize,
    raw_rollout: Option<Vec<Pt2>>,
    cacheable: bool,
    now: Minutes,
    record: &mut BatchRecord,
    cache: Option<&mut PredictionCache>,
) -> WorkerView {
    let cfg = ctx.cfg;
    let workload = ctx.workload;
    let sw = &workload.workers[wi];
    // Rollout, clamped to the grid and to physical reachability:
    // the worker cannot be farther from their current position
    // than speed × elapsed time. Non-finite model output (or
    // injected garbage) invalidates the whole rollout.
    let clamped = raw_rollout.and_then(|outs| {
        let speed_per_unit = sw.worker.speed_km_per_min * tamp_core::time::TIME_UNIT_MINUTES;
        let mut pts = Vec::with_capacity(outs.len());
        for (k, o) in outs.into_iter().enumerate() {
            // Validate *before* clamping: `f64::clamp` would
            // quietly pull an infinite coordinate onto the grid
            // edge and launder it into a plausible point.
            if !(o[0].is_finite() && o[1].is_finite()) {
                return None;
            }
            let raw = workload.grid.clamp(workload.grid.denormalize(o[0], o[1]));
            let max_range = speed_per_unit * (k + 1) as f64;
            let d = current.dist(raw);
            // `d == 0` (or a degenerate non-finite distance)
            // must not reach `lerp` with a 0/0 ratio.
            pts.push(if d.is_finite() && d > 0.0 && d > max_range {
                current.lerp(raw, max_range / d)
            } else {
                raw
            });
        }
        Some(pts)
    });
    let pts = match clamped {
        Some(pts) => {
            if cacheable {
                if let Some(cache) = cache {
                    let key = RolloutKey::new(
                        observed_len,
                        current,
                        cfg.predict_horizon,
                        cache.version(wi),
                    );
                    cache.store(wi, key, pts.clone());
                }
            }
            pts
        }
        None => {
            // Persistence fallback: predict "stays where last
            // seen" — crude, but never worse than no view. Not
            // cached: the next window must re-attempt the model.
            record.fallback_views += 1;
            vec![current; cfg.predict_horizon]
        }
    };
    finish_view(sw, now, current, pts, ctx.predictors, wi)
}

/// Assembles the [`WorkerView`] once the predicted trajectory is known
/// (computed or cache-served): ground-truth remainder of the day for
/// the acceptance simulation + UB oracle, validation MR, limits.
fn finish_view(
    sw: &tamp_sim::SimWorker,
    now: Minutes,
    current: Point,
    predicted: Vec<Point>,
    predictors: Option<&TrainedPredictors>,
    wi: usize,
) -> WorkerView {
    let real_future: Vec<TimedPoint> = sw
        .worker
        .real_routine
        .window(now, Minutes::new(f64::MAX))
        .to_vec();
    WorkerView {
        id: sw.worker.id,
        current,
        predicted,
        real_future,
        mr: predictors.map_or(0.0, |p| p.mrs[wi]),
        detour_limit_km: sw.worker.detour_limit_km,
        speed_km_per_min: sw.worker.speed_km_per_min,
    }
}

/// What one adaptation round did, so the caller can invalidate exactly
/// the affected cache slots.
#[derive(Debug, Default)]
struct AdaptOutcome {
    /// Models rolled back and frozen this round.
    newly_quarantined: usize,
    /// Workers whose model parameters may differ from before the round:
    /// a gradient step landed *or* a divergent model was rolled back.
    /// Workers skipped for lack of data (or already quarantined) are
    /// absent — their models are bit-identical, so their cached
    /// rollouts stay valid.
    changed: Vec<usize>,
}

/// One round of intraday fine-tuning: each worker's model takes a few
/// clipped SGD steps on `(seq_in, seq_out)` windows drawn from their
/// location reports observed so far today.
///
/// Divergence guard: if a step produces a non-finite loss, gradient or
/// parameter (bad data, poisoning, numeric blow-up), the model is rolled
/// back to its offline checkpoint and *quarantined* — frozen for the
/// rest of the day.
fn online_adapt_round(
    ctx: &StepCtx<'_>,
    models: &mut [Seq2Seq],
    now: Minutes,
    oa: &OnlineAdaptConfig,
    round_idx: u64,
    quarantined: &mut [bool],
) -> AdaptOutcome {
    let cfg = ctx.cfg;
    let workload = ctx.workload;
    let seq_out = ctx.predictors.map_or(1, |p| p.seq_out.max(1));
    let mut outcome = AdaptOutcome::default();
    for (wi, sw) in workload.workers.iter().enumerate() {
        if quarantined[wi] {
            continue;
        }
        // Train on what the platform received, not on ground truth.
        let received;
        let observed: &[TimedPoint] = match (ctx.fplan, ctx.reports) {
            (Some(pl), _) => {
                received = pl.workers[wi].received_before(now);
                &received
            }
            (None, Some(logs)) => &logs[wi],
            (None, None) => sw.worker.real_routine.window(Minutes::ZERO, now),
        };
        if observed.len() < cfg.seq_in + seq_out {
            continue;
        }
        let mut pairs: Vec<(Vec<Pt2>, Vec<Pt2>)> = (0..=observed.len() - cfg.seq_in - seq_out)
            .map(|start| {
                let norm = |p: &TimedPoint| {
                    let (x, y) = workload.grid.normalize(p.loc);
                    [x, y]
                };
                let input = observed[start..start + cfg.seq_in]
                    .iter()
                    .map(norm)
                    .collect();
                let target = observed[start + cfg.seq_in..start + cfg.seq_in + seq_out]
                    .iter()
                    .map(norm)
                    .collect();
                (input, target)
            })
            .collect();
        if pairs.is_empty() {
            continue;
        }
        if ctx
            .fplan
            .is_some_and(|pl| pl.injector.adapt_poisoned(wi as u64, round_idx))
        {
            // Poisoned round: corrupted targets slipped into the online
            // training feed. The divergence guard below must catch the
            // resulting non-finite loss.
            for (_, target) in &mut pairs {
                for p in target.iter_mut() {
                    p[0] = f64::NAN;
                }
            }
        }
        let batch = TrainBatch::new(pairs);
        let model = &mut models[wi];
        let mut theta = model.params();
        let mut healthy = true;
        for _ in 0..oa.steps {
            model.set_params(&theta);
            let (loss, mut g) = model.loss_and_grad(&batch, &MseLoss);
            if !loss.is_finite() || g.iter().any(|v| !v.is_finite()) {
                healthy = false;
                break;
            }
            clip_grad_norm(&mut g, 1.0);
            for (p, gv) in theta.iter_mut().zip(&g) {
                *p -= oa.lr * gv;
            }
        }
        if healthy && theta.iter().all(|v| v.is_finite()) {
            model.set_params(&theta);
        } else {
            // Roll back to the offline checkpoint and stop adapting this
            // worker for the day.
            if let Some(p) = ctx.predictors {
                *model = p.models[wi].clone();
            }
            quarantined[wi] = true;
            outcome.newly_quarantined += 1;
            // Per-worker quarantine event: idx names the worker whose
            // model was rolled back this round.
            ctx.obs.count_idx("engine.quarantine", 1, Some(wi as u64));
        }
        // Both branches may have moved the parameters (step or
        // rollback); either way this worker's cached rollouts are stale.
        outcome.changed.push(wi);
    }
    outcome
}

/// Number of batch windows in a workload's day (diagnostics).
pub fn n_batches(workload: &Workload, cfg: &EngineConfig) -> usize {
    (workload.horizon.as_f64() / cfg.batch_window_min).ceil() as usize
}

/// A convenient bundle: run every algorithm of Fig. 6 on one workload.
pub fn run_all_algorithms(
    workload: &Workload,
    with_loss: &TrainedPredictors,
    with_mse: &TrainedPredictors,
    cfg: &EngineConfig,
) -> Vec<(String, AssignmentMetrics)> {
    vec![
        (
            "UB".into(),
            run_assignment(workload, None, AssignmentAlgo::Ub, cfg),
        ),
        (
            "LB".into(),
            run_assignment(workload, None, AssignmentAlgo::Lb, cfg),
        ),
        (
            "PPI".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Ppi, cfg),
        ),
        (
            "PPI-loss".into(),
            run_assignment(workload, Some(with_mse), AssignmentAlgo::Ppi, cfg),
        ),
        (
            "KM".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Km, cfg),
        ),
        (
            "KM-loss".into(),
            run_assignment(workload, Some(with_mse), AssignmentAlgo::Km, cfg),
        ),
        (
            "GGPSO".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Ggpso, cfg),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_predictors, LossKind, PredictionAlgo, TrainingConfig};
    use tamp_meta::meta_training::MetaConfig;
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn tiny() -> Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 21).build()
    }

    fn quick_predictors(w: &Workload) -> TrainedPredictors {
        train_predictors(
            w,
            &TrainingConfig {
                algo: PredictionAlgo::Maml,
                loss: LossKind::Mse,
                hidden: 6,
                seq_in: 3,
                meta: MetaConfig {
                    iterations: 2,
                    ..MetaConfig::default()
                },
                adapt_steps: 2,
                seed: 9,
                ..TrainingConfig::default()
            },
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            seq_in: 3,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ub_completes_with_zero_rejections() {
        let w = tiny();
        let m = run_assignment(&w, None, AssignmentAlgo::Ub, &cfg());
        assert_eq!(m.rejected, 0, "UB checks real constraints");
        assert_eq!(m.rejection_ratio(), 0.0);
        assert!(m.completed > 0, "oracle should complete something");
        assert_eq!(m.completed, m.assigned_total);
    }

    #[test]
    fn metric_accounting_is_consistent() {
        let w = tiny();
        let p = quick_predictors(&w);
        for algo in [
            AssignmentAlgo::Ppi,
            AssignmentAlgo::Km,
            AssignmentAlgo::Lb,
            AssignmentAlgo::Ggpso,
        ] {
            let m = run_assignment(&w, Some(&p), algo, &cfg());
            assert_eq!(m.completed + m.rejected, m.assigned_total, "{algo:?}");
            assert!(m.completed <= m.tasks_total);
            assert!(m.completion_ratio() <= 1.0);
            assert!(m.rejection_ratio() <= 1.0);
            assert!(m.avg_worker_cost_km().is_finite());
        }
    }

    #[test]
    fn ub_dominates_lb_on_completion() {
        let w = tiny();
        let ub = run_assignment(&w, None, AssignmentAlgo::Ub, &cfg());
        let lb = run_assignment(&w, None, AssignmentAlgo::Lb, &cfg());
        assert!(
            ub.completion_ratio() >= lb.completion_ratio(),
            "UB {} must beat LB {}",
            ub.completion_ratio(),
            lb.completion_ratio()
        );
    }

    #[test]
    fn completed_detours_respect_limits() {
        let w = tiny();
        let p = quick_predictors(&w);
        let m = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &cfg());
        if m.completed > 0 {
            let avg = m.avg_worker_cost_km();
            let limit = w.workers[0].worker.detour_limit_km;
            assert!(avg <= limit, "avg detour {avg} exceeds limit {limit}");
        }
    }

    #[test]
    #[should_panic(expected = "needs trained predictors")]
    fn prediction_algorithms_require_predictors() {
        let w = tiny();
        run_assignment(&w, None, AssignmentAlgo::Ppi, &cfg());
    }

    #[test]
    fn n_batches_counts_windows() {
        let w = tiny(); // 24 units × 10 min = 240 min / 2 min = 120
        assert_eq!(n_batches(&w, &cfg()), 120);
    }

    #[test]
    fn task_conservation_holds_end_to_end() {
        // Every published task ends the day in exactly one bucket:
        // completed, expired unserved, or still pending at the horizon
        // (impossible here — all deadlines precede the end of day).
        let w = tiny();
        let p = quick_predictors(&w);
        let mut trace = Vec::new();
        let m = run_assignment_traced(&w, Some(&p), AssignmentAlgo::Ppi, &cfg(), &mut trace);
        let expired: usize = trace.iter().map(|r| r.expired).sum();
        assert_eq!(expired, m.tasks_expired);
        assert_eq!(
            m.completed + m.tasks_expired,
            m.tasks_total,
            "completed + expired must cover every published task"
        );
    }

    #[test]
    fn incremental_stepping_matches_one_shot() {
        // Drive EngineState by hand (the serve pattern) and compare
        // against the one-shot wrapper over the same workload.
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = cfg();
        let one_shot = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &cfg);

        let obs = Obs::null();
        let mut state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade: false,
            obs: &obs,
        };
        let mut next = 0usize;
        while state.now() < w.horizon.as_f64() {
            let end = state.next_window_end(&cfg);
            let from = next;
            while next < w.tasks.len() && w.tasks[next].release.as_f64() < end {
                next += 1;
            }
            state.step_batch(&ctx, &w.tasks[from..next]);
        }
        let stepped = state.finish(&obs);
        assert_eq!(stepped.completed, one_shot.completed);
        assert_eq!(stepped.rejected, one_shot.rejected);
        assert_eq!(stepped.assigned_total, one_shot.assigned_total);
        assert_eq!(
            stepped.total_detour_km.to_bits(),
            one_shot.total_detour_km.to_bits()
        );
    }

    #[test]
    fn auction_solver_matches_exact_end_to_end() {
        // Continuous inverse-distance weights make each window's optimum
        // unique in practice, so the ε-optimal auction backend must
        // reproduce the exact backend's full day, metric for metric
        // (cardinality equality is guaranteed unconditionally; picking a
        // different equal-weight matching would need a tie far below the
        // weight scale of real instances).
        let w = tiny();
        let p = quick_predictors(&w);
        let exact = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &cfg());
        let auction_cfg = EngineConfig {
            solver: SolverKind::Auction,
            ..cfg()
        };
        let auction = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &auction_cfg);
        assert_eq!(auction.completed, exact.completed);
        assert_eq!(auction.rejected, exact.rejected);
        assert_eq!(auction.assigned_total, exact.assigned_total);
        assert_eq!(
            auction.total_detour_km.to_bits(),
            exact.total_detour_km.to_bits()
        );
        // The KM baseline goes through the same seam.
        let exact = run_assignment(&w, Some(&p), AssignmentAlgo::Km, &cfg());
        let auction = run_assignment(&w, Some(&p), AssignmentAlgo::Km, &auction_cfg);
        assert_eq!(auction.completed, exact.completed);
        assert_eq!(auction.rejected, exact.rejected);
    }

    #[test]
    fn auction_warm_cache_snapshots_and_stays_output_neutral() {
        // A mid-run snapshot under the auction backend carries the
        // warm-start price cache; restoring with it — or with it wiped
        // (a legacy snapshot) — must both replay byte-identically to the
        // uninterrupted run, because warm prices only accelerate the
        // solve.
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            seq_in: 3,
            solver: SolverKind::Auction,
            ..EngineConfig::default()
        };
        let obs = Obs::null();
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade: false,
            obs: &obs,
        };

        let mut straight = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let mut next = 0usize;
        drive(&mut straight, &ctx, &w, &cfg, &mut next, usize::MAX);
        let straight_m = straight.finish(&obs);

        let mut first = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let mut next = 0usize;
        drive(&mut first, &ctx, &w, &cfg, &mut next, 45);
        let snap = first.snapshot();
        assert!(
            !snap.solver_warm.is_empty(),
            "45 assigned windows must have cached warm prices"
        );
        let json = serde_json::to_string(&snap).unwrap();
        assert_eq!(
            json,
            serde_json::to_string(&first.snapshot()).unwrap(),
            "snapshot bytes must be stable"
        );
        drop(first);

        for wipe_warm in [false, true] {
            let mut snap: EngineSnapshot = serde_json::from_str(&json).unwrap();
            if wipe_warm {
                snap.solver_warm.clear();
            }
            let mut resumed =
                EngineState::restore(&w, Some(&p), AssignmentAlgo::Ppi, &cfg, snap).unwrap();
            let mut next_r = next;
            drive(&mut resumed, &ctx, &w, &cfg, &mut next_r, usize::MAX);
            let resumed_m = resumed.finish(&obs);
            assert_eq!(
                resumed_m.completed, straight_m.completed,
                "wipe={wipe_warm}"
            );
            assert_eq!(resumed_m.rejected, straight_m.rejected, "wipe={wipe_warm}");
            assert_eq!(
                resumed_m.total_detour_km.to_bits(),
                straight_m.total_detour_km.to_bits(),
                "wipe={wipe_warm}"
            );
        }
    }

    /// Steps a state over `windows` batch windows, feeding tasks from
    /// the workload (the one-shot admission schedule).
    fn drive(
        state: &mut EngineState,
        ctx: &StepCtx<'_>,
        w: &Workload,
        cfg: &EngineConfig,
        next: &mut usize,
        windows: usize,
    ) {
        for _ in 0..windows {
            if state.now() >= w.horizon.as_f64() {
                break;
            }
            let end = state.next_window_end(cfg);
            let from = *next;
            while *next < w.tasks.len() && w.tasks[*next].release.as_f64() < end {
                *next += 1;
            }
            state.step_batch(ctx, &w.tasks[from..*next]);
        }
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        // Run 120 windows straight vs. 45 windows → snapshot → JSON
        // round trip → restore → remaining windows. With online
        // adaptation, GGPSO (exercising the serialized RNG), and the
        // prediction cache all on, every deterministic field — cache
        // counters included — must match.
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            seq_in: 3,
            prediction_cache: true,
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..EngineConfig::default()
        };
        let obs = Obs::null();
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ggpso,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade: false,
            obs: &obs,
        };

        let mut straight = EngineState::new(&w, Some(&p), AssignmentAlgo::Ggpso, &cfg).unwrap();
        let mut next = 0usize;
        drive(&mut straight, &ctx, &w, &cfg, &mut next, usize::MAX);
        let straight_stats = straight.cache_stats();
        let straight_m = straight.finish(&obs);

        let mut first = EngineState::new(&w, Some(&p), AssignmentAlgo::Ggpso, &cfg).unwrap();
        let mut next = 0usize;
        drive(&mut first, &ctx, &w, &cfg, &mut next, 45);
        let snap = first.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        assert_eq!(
            json,
            serde_json::to_string(&first.snapshot()).unwrap(),
            "snapshot bytes must be stable"
        );
        let snap: EngineSnapshot = serde_json::from_str(&json).unwrap();
        drop(first); // the "crash"
        let mut resumed =
            EngineState::restore(&w, Some(&p), AssignmentAlgo::Ggpso, &cfg, snap).unwrap();
        assert_eq!(resumed.batches_run(), 45);
        drive(&mut resumed, &ctx, &w, &cfg, &mut next, usize::MAX);
        let resumed_stats = resumed.cache_stats();
        let resumed_m = resumed.finish(&obs);

        assert_eq!(resumed_m.completed, straight_m.completed);
        assert_eq!(resumed_m.rejected, straight_m.rejected);
        assert_eq!(resumed_m.assigned_total, straight_m.assigned_total);
        assert_eq!(resumed_m.tasks_expired, straight_m.tasks_expired);
        assert_eq!(
            resumed_m.total_detour_km.to_bits(),
            straight_m.total_detour_km.to_bits()
        );
        assert_eq!(resumed_m.quarantined_models, straight_m.quarantined_models);
        assert_eq!(resumed_stats, straight_stats, "cache counters survive");
    }

    #[test]
    fn batched_scalar_rollouts_match_serial_bitwise() {
        // The tentpole equivalence: cross-worker GEMM rollouts over the
        // base + delta weight store must reproduce the serial per-worker
        // path bit for bit under the scalar backend — with online
        // adaptation and the prediction cache on, so the delta refit
        // hooks are exercised too.
        let w = tiny();
        let p = quick_predictors(&w);
        assert!(!p.heads.is_empty(), "training populates cluster heads");
        let serial_cfg = EngineConfig {
            seq_in: 3,
            prediction_cache: true,
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..EngineConfig::default()
        };
        let serial = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &serial_cfg);
        for rollout_batch in [4, 64] {
            let batched_cfg = EngineConfig {
                rollout_batch,
                ..serial_cfg
            };
            let batched = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &batched_cfg);
            assert_eq!(batched.completed, serial.completed, "batch {rollout_batch}");
            assert_eq!(batched.rejected, serial.rejected, "batch {rollout_batch}");
            assert_eq!(
                batched.assigned_total, serial.assigned_total,
                "batch {rollout_batch}"
            );
            assert_eq!(
                batched.total_detour_km.to_bits(),
                serial.total_detour_km.to_bits(),
                "batch {rollout_batch}"
            );
            assert_eq!(
                batched.quarantined_models, serial.quarantined_models,
                "batch {rollout_batch}"
            );
        }
    }

    #[test]
    fn batched_backend_stays_within_tolerance_end_to_end() {
        // The relaxed backend re-associates the GEMM reductions; on this
        // workload the perturbation is far below any decision threshold,
        // so the day's outcomes must match the scalar run (and the
        // per-group probe-lane gate must never fire under a sane rtol —
        // there is no counter to observe here, but a firing gate would
        // imply errors ~1e-9, which would show up in the comparison).
        let w = tiny();
        let p = quick_predictors(&w);
        let scalar_cfg = EngineConfig {
            seq_in: 3,
            rollout_batch: 64,
            ..EngineConfig::default()
        };
        let vec_cfg = EngineConfig {
            kernel: KernelBackend::Batched,
            ..scalar_cfg
        };
        let scalar = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &scalar_cfg);
        let batched = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &vec_cfg);
        assert_eq!(batched.completed, scalar.completed);
        assert_eq!(batched.rejected, scalar.rejected);
        assert!((batched.total_detour_km - scalar.total_detour_km).abs() < 1e-6);
    }

    #[test]
    fn batched_backend_requires_a_sane_rtol() {
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            kernel: KernelBackend::Batched,
            kernel_rtol: f64::NAN,
            ..cfg()
        };
        assert!(EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).is_err());
    }

    #[test]
    fn v1_dense_snapshot_restores_into_delta_era_losslessly() {
        // Backward compatibility for the snapshot version bump: a v1
        // snapshot (dense live models, no `live_deltas` field) and a v2
        // delta-compressed snapshot of the same state must both restore
        // into runs byte-identical to the uninterrupted one.
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            seq_in: 3,
            prediction_cache: true,
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..EngineConfig::default()
        };
        let obs = Obs::null();
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade: false,
            obs: &obs,
        };

        let mut straight = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let mut next = 0usize;
        drive(&mut straight, &ctx, &w, &cfg, &mut next, usize::MAX);
        let straight_m = straight.finish(&obs);

        let mut first = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let mut next = 0usize;
        drive(&mut first, &ctx, &w, &cfg, &mut next, 70);

        // A v1 writer: dense models, version 1, no delta field.
        let mut v1 = first.snapshot();
        assert!(v1.live_models.is_some() && v1.live_deltas.is_none());
        v1.version = 1;
        // The v2 delta writer: overrides against the offline models.
        let v2 = first.snapshot_with(Some(&p));
        assert!(v2.live_models.is_none());
        let deltas = v2.live_deltas.as_ref().unwrap();
        assert_eq!(deltas.len(), w.workers.len());
        let dense_models = v1.live_models.clone().unwrap();
        for (wi, d) in deltas.iter().enumerate() {
            let mut params = p.models[wi].params();
            d.patch(&mut params);
            let live = dense_models[wi].params();
            assert_eq!(
                params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                live.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "delta reconstruction is lossless for worker {wi}"
            );
        }
        let v2_json = serde_json::to_string(&v2).unwrap();
        let v1_json = serde_json::to_string(&v1).unwrap();
        assert!(
            v2_json.len() < v1_json.len(),
            "delta snapshot ({}) should undercut the dense one ({})",
            v2_json.len(),
            v1_json.len()
        );
        drop(first);

        for json in [v1_json, v2_json] {
            let snap: EngineSnapshot = serde_json::from_str(&json).unwrap();
            let mut resumed =
                EngineState::restore(&w, Some(&p), AssignmentAlgo::Ppi, &cfg, snap).unwrap();
            let mut next_r = next;
            drive(&mut resumed, &ctx, &w, &cfg, &mut next_r, usize::MAX);
            let m = resumed.finish(&obs);
            assert_eq!(m.completed, straight_m.completed);
            assert_eq!(m.rejected, straight_m.rejected);
            assert_eq!(
                m.total_detour_km.to_bits(),
                straight_m.total_detour_km.to_bits()
            );
        }

        // A delta snapshot without the predictors cannot be restored.
        let snap: EngineSnapshot =
            serde_json::from_str(&serde_json::to_string(&v2).unwrap()).unwrap();
        assert!(EngineState::restore(&w, None, AssignmentAlgo::Ub, &cfg, snap).is_err());
    }

    #[test]
    fn rollout_store_tracks_adaptation_and_hot_swaps() {
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            seq_in: 3,
            rollout_batch: 8,
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..EngineConfig::default()
        };
        let obs = Obs::null();
        let mut state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        assert!(state.rollout_store_stats().is_none(), "store is lazy");
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade: false,
            obs: &obs,
        };
        let mut next = 0usize;
        drive(&mut state, &ctx, &w, &cfg, &mut next, 40);
        let (bytes, _) = state.rollout_store_stats().expect("store built");
        assert!(bytes > 0);
        // A hot-swapped model must be re-fit into the store so batched
        // rollouts serve the new parameters.
        let mut replacement = p.models[0].clone();
        let mut theta = replacement.params();
        theta[0] = f64::from_bits(theta[0].to_bits() + 1);
        replacement.set_params(&theta);
        state.install_model(0, &replacement);
        let store = state.rollout.as_mut().unwrap();
        let reconstructed = store.model_for(0).params();
        assert_eq!(
            reconstructed
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "store reconstructs the swapped-in model bit for bit"
        );
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = cfg();
        let state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let mut bad = state.snapshot();
        bad.version += 1;
        assert!(EngineState::restore(&w, Some(&p), AssignmentAlgo::Ppi, &cfg, bad).is_err());
        let snap = state.snapshot();
        let cached_cfg = EngineConfig {
            prediction_cache: true,
            ..cfg
        };
        assert!(
            EngineState::restore(&w, Some(&p), AssignmentAlgo::Ppi, &cached_cfg, snap).is_err(),
            "cache on/off must match the snapshot"
        );
    }

    #[test]
    fn degraded_windows_force_persistence_views() {
        // A degraded step serves every view from the persistence
        // fallback and never touches the cache.
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            seq_in: 3,
            prediction_cache: true,
            ..EngineConfig::default()
        };
        let obs = Obs::null();
        let mut state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let ctx = |degrade| StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade,
            obs: &obs,
        };
        let mut next = 0usize;
        drive(&mut state, &ctx(false), &w, &cfg, &mut next, 30);
        let before = state.cache_stats();
        let mut saw_views = false;
        while state.now() < w.horizon.as_f64() {
            let end = state.next_window_end(&cfg);
            let from = next;
            while next < w.tasks.len() && w.tasks[next].release.as_f64() < end {
                next += 1;
            }
            let record = state.step_batch(&ctx(true), &w.tasks[from..next]);
            assert_eq!(
                record.fallback_views, record.idle_workers,
                "every degraded view is a fallback"
            );
            assert_eq!(record.cache_hits + record.cache_misses, 0);
            saw_views |= record.idle_workers > 0;
        }
        assert!(saw_views, "some degraded window must have built views");
        assert_eq!(
            state.cache_stats(),
            before,
            "cache untouched while degraded"
        );
    }

    #[test]
    fn install_model_bumps_cache_version_and_lifts_quarantine() {
        let w = tiny();
        let p = quick_predictors(&w);
        let cfg = EngineConfig {
            seq_in: 3,
            prediction_cache: true,
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..EngineConfig::default()
        };
        let obs = Obs::null();
        let mut state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
        let ctx = StepCtx {
            workload: &w,
            predictors: Some(&p),
            algo: AssignmentAlgo::Ppi,
            cfg: &cfg,
            fplan: None,
            reports: None,
            degrade: false,
            obs: &obs,
        };
        let mut next = 0usize;
        drive(&mut state, &ctx, &w, &cfg, &mut next, 10);
        state.quarantined[0] = true;
        let mut replacement = p.models[0].clone();
        let mut theta = replacement.params();
        theta[0] += 0.25;
        replacement.set_params(&theta);
        state.install_model(0, &replacement);
        assert!(!state.quarantined[0], "swap lifts quarantine");
        let snap = state.snapshot();
        assert_eq!(
            snap.live_models.as_ref().unwrap()[0].params(),
            replacement.params(),
            "live model replaced"
        );
        assert!(
            snap.cache.as_ref().unwrap().version(0) > 0,
            "cache version bumped so stale rollouts cannot match"
        );
    }
}

//! Crowd workers (Definition 2).
//!
//! A worker `w = (r, l, d)` carries a historical routine `w.r`, a current
//! location `w.l` and a maximum acceptable detour `w.d`. Workers move at a
//! (configurable) speed and accept an assigned task only if completing it
//! detours them by at most `w.d` from their *actual* itinerary — the
//! acceptance model simulated by `tamp-platform`.

use crate::geometry::Point;
use crate::routine::Routine;
use crate::time::Minutes;
use serde::{Deserialize, Serialize};

/// Opaque identifier of a crowd worker.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct WorkerId(pub u64);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A crowd worker `w = (r, l, d)` (Definition 2).
///
/// The platform never sees `real_routine` ahead of time — it only learns
/// the worker's current location when they are online. The field exists so
/// the simulator can evaluate acceptance and the `UB` oracle baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Worker {
    /// Unique worker identifier.
    pub id: WorkerId,
    /// Historical routine `w.r` available for offline training.
    pub history: Routine,
    /// The worker's *actual* future routine for the evaluation horizon;
    /// hidden from assignment algorithms (except the UB oracle).
    pub real_routine: Routine,
    /// Maximum detour `w.d` (kilometres) the worker accepts.
    pub detour_limit_km: f64,
    /// Travel speed in km per minute.
    pub speed_km_per_min: f64,
    /// Whether the worker joined recently (cold-start; drives the paper's
    /// new-worker adaptation path).
    pub is_new: bool,
}

impl Worker {
    /// Creates a worker with the given history and ground-truth future.
    pub fn new(
        id: WorkerId,
        history: Routine,
        real_routine: Routine,
        detour_limit_km: f64,
        speed_km_per_min: f64,
    ) -> Self {
        Self {
            id,
            history,
            real_routine,
            detour_limit_km,
            speed_km_per_min,
            is_new: false,
        }
    }

    /// Marks the worker as newly arrived (little history).
    pub fn mark_new(mut self) -> Self {
        self.is_new = true;
        self
    }

    /// Current location at time `t` according to the real routine, falling
    /// back to the last historical point when the future is unknown.
    pub fn location_at(&self, t: Minutes) -> Option<Point> {
        self.real_routine
            .position_at(t)
            .or_else(|| self.history.points().last().map(|p| p.loc))
    }

    /// Speed expressed per paper time unit (10 minutes), the `sp` of
    /// Lemma 2.
    #[inline]
    pub fn speed_km_per_time_unit(&self) -> f64 {
        self.speed_km_per_min * crate::time::TIME_UNIT_MINUTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routine::TimedPoint;

    fn worker() -> Worker {
        let hist = Routine::from_points(vec![TimedPoint::new(
            Point::new(0.0, 0.0),
            Minutes::new(-10.0),
        )]);
        let real = Routine::from_sampled(
            [Point::new(0.0, 0.0), Point::new(3.0, 0.0)],
            Minutes::ZERO,
            Minutes::new(10.0),
        );
        Worker::new(WorkerId(1), hist, real, 4.0, 0.3)
    }

    #[test]
    fn location_prefers_real_routine() {
        let w = worker();
        let mid = w.location_at(Minutes::new(5.0)).unwrap();
        assert!((mid.x - 1.5).abs() < 1e-12);
    }

    #[test]
    fn location_falls_back_to_history() {
        let mut w = worker();
        w.real_routine = Routine::new();
        assert_eq!(w.location_at(Minutes::ZERO).unwrap(), Point::new(0.0, 0.0));
    }

    #[test]
    fn speed_conversion() {
        let w = worker();
        assert!((w.speed_km_per_time_unit() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mark_new_sets_flag() {
        assert!(worker().mark_new().is_new);
    }
}

//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TampError>;

/// Errors produced by TAMP components.
#[derive(Debug, Clone, PartialEq)]
pub enum TampError {
    /// A routine was too short for the requested operation (e.g. sampling
    /// `(seq_in, seq_out)` pairs from a two-point history).
    RoutineTooShort {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// A decode of the binary routine codec failed.
    Codec(String),
    /// A caller supplied an invalid configuration value.
    InvalidConfig(String),
    /// A model shape mismatch (wrong input/output dimensions).
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        got: String,
    },
    /// An algorithm received an empty input it cannot handle.
    EmptyInput(&'static str),
}

/// Errors surfaced by the online assignment engine's fallible entry
/// points (`try_run_assignment` and friends in `tamp-platform`).
///
/// The engine's philosophy after the fault-injection work is *degrade,
/// don't die*: per-pair and per-worker inconsistencies are skipped and
/// counted in the metrics, so only conditions that make an entire run
/// meaningless (a mis-wired configuration) are reported here.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A prediction-based algorithm was started without trained
    /// predictors (only the UB/LB oracle baselines can run without).
    MissingPredictors {
        /// Name of the algorithm that was requested.
        algo: String,
    },
    /// An engine configuration value was out of its valid domain.
    InvalidEngineConfig(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingPredictors { algo } => {
                write!(f, "{algo} needs trained predictors")
            }
            EngineError::InvalidEngineConfig(msg) => {
                write!(f, "invalid engine configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl fmt::Display for TampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TampError::RoutineTooShort { have, need } => {
                write!(f, "routine too short: have {have} samples, need {need}")
            }
            TampError::Codec(msg) => write!(f, "codec error: {msg}"),
            TampError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TampError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TampError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for TampError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_error_messages() {
        let e = EngineError::MissingPredictors { algo: "Ppi".into() };
        assert_eq!(e.to_string(), "Ppi needs trained predictors");
        let e = EngineError::InvalidEngineConfig("batch window 0".into());
        assert!(e.to_string().contains("batch window 0"));
    }

    #[test]
    fn display_messages() {
        let e = TampError::RoutineTooShort { have: 2, need: 6 };
        assert!(e.to_string().contains("have 2"));
        let e = TampError::ShapeMismatch {
            expected: "4x4".into(),
            got: "4x3".into(),
        };
        assert!(e.to_string().contains("expected 4x4"));
        assert!(TampError::EmptyInput("tasks").to_string().contains("tasks"));
    }
}

//! The LSTM-Encoder-Decoder mobility model.
//!
//! Section III-B ("Discussion"): the paper's meta-learning is
//! model-agnostic but instantiates an encoder–decoder over LSTMs \[27, 28\].
//! The encoder consumes `seq_in` normalised locations; its final state
//! seeds the decoder, which emits `seq_out` locations. During training the
//! decoder is *teacher-forced* (its step input is the previous
//! ground-truth location — the standard seq2seq training regime of Cho et
//! al.); at inference it runs autoregressively on its own outputs.
//!
//! The output head predicts the **displacement** from the decoder's
//! previous location rather than the absolute position (the residual /
//! persistence parameterisation standard in trajectory prediction): an
//! untrained model therefore predicts "stay where you are", and learning
//! concentrates on movement deltas. The residual base is the decoder's
//! step input, which is constant w.r.t. the parameters, so gradients are
//! unchanged.
//!
//! Parameters and gradients are exposed as flat `Vec<f64>`s in a fixed
//! layout so `tamp-meta` can implement MAML-style adapt/meta updates and
//! record the k-step gradient paths that feed `Sim_l` (Eq. 2).

use crate::dense::{Dense, DenseGrad};
use crate::gru::{GruCell, GruGrad, GruStepCache};
use crate::loss::{Loss, Pt2};
use crate::lstm::{LstmCell, LstmGrad, LstmState, StepCache};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which recurrent cell the encoder/decoder use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CellKind {
    /// Long short-term memory (the paper's instantiation, \[28\]).
    #[default]
    Lstm,
    /// Gated recurrent unit (the encoder–decoder reference \[27\]).
    Gru,
}

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Seq2SeqConfig {
    /// Recurrent hidden width for both encoder and decoder.
    pub hidden: usize,
    /// Recurrent cell family.
    pub cell: CellKind,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            cell: CellKind::Lstm,
        }
    }
}

impl Seq2SeqConfig {
    /// An LSTM model of the given width (the common case).
    pub fn lstm(hidden: usize) -> Self {
        Self {
            hidden,
            cell: CellKind::Lstm,
        }
    }

    /// A GRU model of the given width.
    pub fn gru(hidden: usize) -> Self {
        Self {
            hidden,
            cell: CellKind::Gru,
        }
    }
}

/// Process-wide source of weight-version stamps (see [`WeightsTag`]).
static NEXT_WEIGHTS_TAG: AtomicU64 = AtomicU64::new(1);

/// An opaque, process-unique version stamp for a model's weights.
///
/// Invariant: **equal tags imply bitwise-equal parameters.** A fresh tag
/// is drawn whenever parameters may have changed ([`Seq2Seq::new`],
/// [`Seq2Seq::set_params`], deserialization); a [`Clone`] shares its
/// source's tag because it shares its exact weights. Tags are never
/// reused, so caches keyed on them (the [`Tape`]'s column-major weight
/// transposes, the [`crate::batch::BatchTape`]'s base transposes) can
/// skip recomputation when the tag is unchanged. Distinct tags imply
/// nothing — two equal models built independently get distinct tags.
///
/// The tag is deliberately invisible to `PartialEq` and serde: model
/// equality and snapshot bytes depend only on the parameters.
#[derive(Debug, Clone)]
struct WeightsTag(u64);

impl WeightsTag {
    fn fresh() -> Self {
        Self(NEXT_WEIGHTS_TAG.fetch_add(1, Ordering::Relaxed))
    }
}

impl Default for WeightsTag {
    fn default() -> Self {
        Self::fresh()
    }
}

impl PartialEq for WeightsTag {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// A recurrent cell of either family, with a unified step interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Cell {
    Lstm(LstmCell),
    Gru(GruCell),
}

/// Unified recurrent state: hidden vector plus the LSTM's cell vector
/// (empty for GRU).
#[derive(Debug, Clone, Default)]
struct CellState {
    h: Vec<f64>,
    c: Vec<f64>,
}

/// Unified step cache.
#[derive(Debug, Clone)]
enum CellCache {
    Lstm(StepCache),
    Gru(GruStepCache),
}

/// Unified gradient accumulator.
enum CellGrad {
    Lstm(LstmGrad),
    Gru(GruGrad),
}

impl CellGrad {
    /// Zeroes the accumulator without reallocating.
    fn zero_in_place(&mut self) {
        match self {
            CellGrad::Lstm(g) => {
                g.dw.clear();
                g.db.fill(0.0);
            }
            CellGrad::Gru(g) => {
                g.dw.clear();
                g.db.fill(0.0);
            }
        }
    }
}

impl Cell {
    fn new(kind: CellKind, input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        match kind {
            CellKind::Lstm => Cell::Lstm(LstmCell::new(input_dim, hidden, rng)),
            CellKind::Gru => Cell::Gru(GruCell::new(input_dim, hidden, rng)),
        }
    }

    fn zero_state(&self, hidden: usize) -> CellState {
        match self {
            Cell::Lstm(_) => CellState {
                h: vec![0.0; hidden],
                c: vec![0.0; hidden],
            },
            Cell::Gru(_) => CellState {
                h: vec![0.0; hidden],
                c: Vec::new(),
            },
        }
    }

    fn n_params(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.n_params(),
            Cell::Gru(c) => c.n_params(),
        }
    }

    fn zero_grad(&self) -> CellGrad {
        match self {
            Cell::Lstm(c) => CellGrad::Lstm(LstmGrad::zeros(c)),
            Cell::Gru(c) => CellGrad::Gru(GruGrad::zeros(c)),
        }
    }

    /// An empty step cache of the matching family (workspace pool slot).
    fn empty_cache(&self) -> CellCache {
        match self {
            Cell::Lstm(_) => CellCache::Lstm(StepCache::empty()),
            Cell::Gru(_) => CellCache::Gru(GruStepCache::empty()),
        }
    }

    /// Whether `grad` has the family and shape of this cell's parameters.
    fn grad_matches(&self, grad: &CellGrad) -> bool {
        match (self, grad) {
            (Cell::Lstm(c), CellGrad::Lstm(g)) => {
                g.dw.rows() == c.w.rows() && g.dw.cols() == c.w.cols() && g.db.len() == c.b.len()
            }
            (Cell::Gru(c), CellGrad::Gru(g)) => {
                g.dw.rows() == c.w.rows() && g.dw.cols() == c.w.cols() && g.db.len() == c.b.len()
            }
            _ => false,
        }
    }

    fn params_into(&self, out: &mut Vec<f64>) {
        match self {
            Cell::Lstm(c) => {
                out.extend_from_slice(c.w.as_slice());
                out.extend_from_slice(&c.b);
            }
            Cell::Gru(c) => {
                out.extend_from_slice(c.w.as_slice());
                out.extend_from_slice(&c.b);
            }
        }
    }

    fn set_params_from(&mut self, flat: &[f64], off: &mut usize) {
        let mut take = |dst: &mut [f64]| {
            dst.copy_from_slice(&flat[*off..*off + dst.len()]);
            *off += dst.len();
        };
        match self {
            Cell::Lstm(c) => {
                take(c.w.as_mut_slice());
                take(&mut c.b);
            }
            Cell::Gru(c) => {
                take(c.w.as_mut_slice());
                take(&mut c.b);
            }
        }
    }

    fn grad_into(grad: &CellGrad, out: &mut Vec<f64>, inv: f64) {
        match grad {
            CellGrad::Lstm(g) => {
                out.extend(g.dw.as_slice().iter().map(|v| v * inv));
                out.extend(g.db.iter().map(|v| v * inv));
            }
            CellGrad::Gru(g) => {
                out.extend(g.dw.as_slice().iter().map(|v| v * inv));
                out.extend(g.db.iter().map(|v| v * inv));
            }
        }
    }

    fn forward_step(&self, x: &[f64], state: &CellState) -> (CellState, CellCache) {
        match self {
            Cell::Lstm(cell) => {
                let (next, cache) = cell.forward_step(
                    x,
                    &LstmState {
                        h: state.h.clone(),
                        c: state.c.clone(),
                    },
                );
                (
                    CellState {
                        h: next.h,
                        c: next.c,
                    },
                    CellCache::Lstm(cache),
                )
            }
            Cell::Gru(cell) => {
                let (h, cache) = cell.forward_step(x, &state.h);
                (CellState { h, c: Vec::new() }, CellCache::Gru(cache))
            }
        }
    }

    /// [`Cell::forward_step`] into caller-owned state/cache buffers.
    /// `a` is scratch for the fused gate pre-activation and `wt` an
    /// optional column-major weight copy (both LSTM only).
    #[allow(clippy::too_many_arguments)]
    fn forward_step_ws(
        &self,
        x: &[f64],
        state: &CellState,
        next: &mut CellState,
        cache: &mut CellCache,
        a: &mut Vec<f64>,
        wt: &[f64],
    ) {
        match (self, cache) {
            (Cell::Lstm(cell), CellCache::Lstm(cache)) => {
                cell.forward_step_ws(
                    x,
                    &state.h,
                    &state.c,
                    &mut next.h,
                    &mut next.c,
                    cache,
                    a,
                    wt,
                );
            }
            (Cell::Gru(cell), CellCache::Gru(cache)) => {
                cell.forward_step_ws(x, &state.h, &mut next.h, cache);
                next.c.clear();
            }
            _ => unreachable!("cell/cache families always match"),
        }
    }

    /// Column-major weight copy for the vectorised forward GEMM (LSTM
    /// only; GRU leaves `out` empty and keeps its row-major path).
    fn transpose_weights_into(&self, out: &mut Vec<f64>) {
        match self {
            Cell::Lstm(cell) => cell.w.transpose_into(out),
            Cell::Gru(_) => out.clear(),
        }
    }

    /// [`Cell::backward_step`] with caller-owned scratch. `s1..s5` are
    /// generic scratch slots; each family uses the subset it needs and
    /// overwrites them completely, so slots can be shared between cells.
    #[allow(clippy::too_many_arguments)]
    fn backward_step_ws(
        &self,
        cache: &CellCache,
        dh: &[f64],
        dc: &[f64],
        grad: &mut CellGrad,
        dh_prev: &mut Vec<f64>,
        dc_prev: &mut Vec<f64>,
        s1: &mut Vec<f64>,
        s2: &mut Vec<f64>,
        s3: &mut Vec<f64>,
        s4: &mut Vec<f64>,
        s5: &mut Vec<f64>,
    ) {
        match (self, cache, grad) {
            (Cell::Lstm(cell), CellCache::Lstm(cache), CellGrad::Lstm(grad)) => {
                cell.backward_step_ws(cache, dh, dc, grad, s1, s2, dh_prev, dc_prev);
            }
            (Cell::Gru(cell), CellCache::Gru(cache), CellGrad::Gru(grad)) => {
                cell.backward_step_ws(cache, dh, grad, s1, dh_prev, s2, s3, s4, s5);
                dc_prev.clear();
            }
            _ => unreachable!("cell/cache/grad families always match"),
        }
    }
}

/// A reusable training workspace for [`Seq2Seq::loss_and_grad_ws`].
///
/// Holds every buffer the forward/backward pass needs — step-cache pools,
/// state double-buffers, gradient accumulators, and the flat output
/// gradient — so repeated loss/gradient evaluations (the inner loops of
/// MAML/TAML meta-training) allocate nothing once the buffers have grown
/// to the model's working-set size. A tape adapts automatically if handed
/// a model of a different shape or cell family.
#[derive(Default)]
pub struct Tape {
    enc_caches: Vec<CellCache>,
    dec_caches: Vec<CellCache>,
    dec_h: Vec<Vec<f64>>,
    state: CellState,
    next: CellState,
    enc_grad: Option<CellGrad>,
    dec_grad: Option<CellGrad>,
    head_grad: Option<DenseGrad>,
    preds: Vec<Pt2>,
    dy: Vec<Pt2>,
    y: Vec<f64>,
    dh: Vec<f64>,
    dc: Vec<f64>,
    dh_prev: Vec<f64>,
    dc_prev: Vec<f64>,
    dh_head: Vec<f64>,
    s1: Vec<f64>,
    s2: Vec<f64>,
    s3: Vec<f64>,
    s4: Vec<f64>,
    s5: Vec<f64>,
    wt_enc: Vec<f64>,
    wt_dec: Vec<f64>,
    /// Weights tag the cached `wt_enc`/`wt_dec` transposes were built
    /// from; the transposes are recomputed only when the model's tag
    /// moves (per adaptation step, not per forward call).
    wt_tag: Option<u64>,
    flat: Vec<f64>,
}

impl Tape {
    /// An empty tape; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The flat gradient produced by the last
    /// [`Seq2Seq::loss_and_grad_ws`] call (layout of
    /// [`Seq2Seq::params`]). Empty before the first call.
    pub fn grad(&self) -> &[f64] {
        &self.flat
    }

    /// Mutable view of the last gradient (e.g. for in-place clipping).
    pub fn grad_mut(&mut self) -> &mut [f64] {
        &mut self.flat
    }

    /// (Re)sizes the gradient accumulators for `model` and zeroes them.
    fn ensure(&mut self, model: &Seq2Seq) {
        match self.enc_grad.as_mut() {
            Some(g) if model.encoder.grad_matches(g) => g.zero_in_place(),
            _ => {
                self.enc_grad = Some(model.encoder.zero_grad());
                self.enc_caches.clear();
            }
        }
        match self.dec_grad.as_mut() {
            Some(g) if model.decoder.grad_matches(g) => g.zero_in_place(),
            _ => {
                self.dec_grad = Some(model.decoder.zero_grad());
                self.dec_caches.clear();
            }
        }
        match self.head_grad.as_mut() {
            Some(g)
                if g.dw.rows() == model.head.w.rows()
                    && g.dw.cols() == model.head.w.cols()
                    && g.db.len() == model.head.b.len() =>
            {
                g.dw.clear();
                g.db.fill(0.0);
            }
            _ => self.head_grad = Some(DenseGrad::zeros(&model.head)),
        }
    }
}

/// One training batch: normalised `(input, target)` sequence pairs
/// (Definition 3's `(rᵢ, yᵢ)` samples).
#[derive(Debug, Clone, Default)]
pub struct TrainBatch {
    /// The `(seq_in, seq_out)` pairs.
    pub pairs: Vec<(Vec<Pt2>, Vec<Pt2>)>,
}

impl TrainBatch {
    /// Builds a batch from pairs.
    pub fn new(pairs: Vec<(Vec<Pt2>, Vec<Pt2>)>) -> Self {
        Self { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The encoder–decoder model. Input and output are 2-D normalised
/// locations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seq2Seq {
    cfg: Seq2SeqConfig,
    encoder: Cell,
    decoder: Cell,
    head: Dense,
    /// Weight-version stamp; compares equal always and is skipped by
    /// serde so equality and snapshot bytes see only the parameters.
    #[serde(skip)]
    tag: WeightsTag,
}

/// The per-step feature vector fed to the LSTM cells: the location plus
/// its displacement from the previous location. The explicit velocity
/// channel lets the recurrent cells extrapolate constant-speed motion
/// without having to differentiate positions internally.
#[inline]
pub(crate) fn step_features(cur: Pt2, prev: Pt2) -> [f64; 4] {
    [cur[0], cur[1], cur[0] - prev[0], cur[1] - prev[1]]
}

impl Seq2Seq {
    /// Dimensionality of each sequence element (x, y).
    pub const POINT_DIM: usize = 2;
    /// Dimensionality of the internal LSTM step features (x, y, dx, dy).
    pub const FEATURE_DIM: usize = 4;

    /// A freshly initialised model.
    pub fn new(cfg: Seq2SeqConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.hidden > 0, "hidden width must be positive");
        Self {
            cfg,
            encoder: Cell::new(cfg.cell, Self::FEATURE_DIM, cfg.hidden, rng),
            decoder: Cell::new(cfg.cell, Self::FEATURE_DIM, cfg.hidden, rng),
            head: Dense::new(cfg.hidden, Self::POINT_DIM, rng),
            tag: WeightsTag::fresh(),
        }
    }

    /// The current weights-version stamp: equal stamps imply bitwise
    /// equal parameters (a clone shares its source's stamp; any call to
    /// [`Seq2Seq::set_params`] draws a fresh one). Caches of derived
    /// weight layouts key on this to skip recomputation.
    pub fn weights_tag(&self) -> u64 {
        self.tag.0
    }

    /// The encoder, decoder, and head as concrete LSTM parts, when this
    /// is an LSTM model (the batched rollout's fast path; GRU models
    /// take the serial fallback).
    pub(crate) fn lstm_parts(&self) -> Option<(&LstmCell, &LstmCell, &Dense)> {
        match (&self.encoder, &self.decoder) {
            (Cell::Lstm(e), Cell::Lstm(d)) => Some((e, d, &self.head)),
            _ => None,
        }
    }

    /// The configuration used to build the model.
    pub fn config(&self) -> Seq2SeqConfig {
        self.cfg
    }

    /// Total number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.encoder.n_params() + self.decoder.n_params() + self.head.n_params()
    }

    /// Flattens the parameters in a fixed layout:
    /// `enc.w | enc.b | dec.w | dec.b | head.w | head.b`.
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_params());
        self.encoder.params_into(&mut out);
        self.decoder.params_into(&mut out);
        out.extend_from_slice(self.head.w.as_slice());
        out.extend_from_slice(&self.head.b);
        out
    }

    /// Writes back a flat parameter vector produced by [`Seq2Seq::params`]
    /// (or any vector of the same length).
    pub fn set_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.n_params(), "parameter length mismatch");
        let mut off = 0;
        self.encoder.set_params_from(flat, &mut off);
        self.decoder.set_params_from(flat, &mut off);
        let mut take = |dst: &mut [f64]| {
            dst.copy_from_slice(&flat[off..off + dst.len()]);
            off += dst.len();
        };
        take(self.head.w.as_mut_slice());
        take(&mut self.head.b);
        self.tag = WeightsTag::fresh();
    }

    /// Autoregressive prediction: encodes `input` and rolls the decoder
    /// `seq_out` steps on its own outputs.
    ///
    /// Panics when `input` is empty — the decoder needs a start token (the
    /// last observed location).
    pub fn predict(&self, input: &[Pt2], seq_out: usize) -> Vec<Pt2> {
        assert!(
            !input.is_empty(),
            "prediction needs at least one input point"
        );
        let mut state = self.encoder.zero_state(self.cfg.hidden);
        for (i, x) in input.iter().enumerate() {
            let before = input[i.saturating_sub(1)];
            let (next, _) = self
                .encoder
                .forward_step(&step_features(*x, before), &state);
            state = next;
        }
        let mut outputs = Vec::with_capacity(seq_out);
        let mut prev = *input.last().expect("non-empty");
        let mut before = input[input.len().saturating_sub(2)];
        for _ in 0..seq_out {
            let (next, _) = self
                .decoder
                .forward_step(&step_features(prev, before), &state);
            state = next;
            let y = self.head.forward(&state.h);
            let pt = [prev[0] + y[0], prev[1] + y[1]];
            outputs.push(pt);
            before = prev;
            prev = pt;
        }
        outputs
    }

    /// Mean loss over a batch under teacher forcing, plus the flat
    /// gradient (same layout as [`Seq2Seq::params`]).
    ///
    /// Exact BPTT through the decoder and encoder. The returned loss and
    /// gradient are averaged over the batch. Allocates a fresh [`Tape`]
    /// per call — hot loops should hold one via [`Seq2Seq::make_tape`]
    /// and call [`Seq2Seq::loss_and_grad_ws`] instead.
    pub fn loss_and_grad(&self, batch: &TrainBatch, loss: &dyn Loss) -> (f64, Vec<f64>) {
        let mut tape = self.make_tape();
        let l = self.loss_and_grad_ws(batch, loss, &mut tape);
        (l, mem::take(&mut tape.flat))
    }

    /// A training workspace pre-sized for this model's gradients.
    pub fn make_tape(&self) -> Tape {
        let mut tape = Tape::new();
        tape.ensure(self);
        tape
    }

    /// [`Seq2Seq::loss_and_grad`] against a reusable workspace: returns
    /// the mean loss and leaves the flat gradient in [`Tape::grad`].
    /// Arithmetic is bit-identical to the allocating variant; after the
    /// first call on a given model shape, no allocations are performed.
    pub fn loss_and_grad_ws(&self, batch: &TrainBatch, loss: &dyn Loss, tape: &mut Tape) -> f64 {
        assert!(!batch.is_empty(), "empty training batch");
        let h = self.cfg.hidden;
        tape.ensure(self);
        let Tape {
            enc_caches,
            dec_caches,
            dec_h,
            state,
            next,
            enc_grad,
            dec_grad,
            head_grad,
            preds,
            dy,
            y,
            dh,
            dc,
            dh_prev,
            dc_prev,
            dh_head,
            s1,
            s2,
            s3,
            s4,
            s5,
            wt_enc,
            wt_dec,
            wt_tag,
            flat,
        } = tape;
        let enc_grad = enc_grad.as_mut().expect("ensured");
        let dec_grad = dec_grad.as_mut().expect("ensured");
        let head_grad = head_grad.as_mut().expect("ensured");
        // The weights are constant across every step of this call; a
        // column-major copy lets the forward gate GEMM vectorise
        // (bit-identical results — see `matvec_colmajor_into`). The copy
        // itself is cached across calls keyed on the weights tag, so an
        // adaptation epoch pays for it once per weight update rather than
        // once per forward/backward pass.
        if *wt_tag != Some(self.tag.0) {
            self.encoder.transpose_weights_into(wt_enc);
            self.decoder.transpose_weights_into(wt_dec);
            *wt_tag = Some(self.tag.0);
        }
        let mut total_loss = 0.0;

        for (input, target) in &batch.pairs {
            assert!(!input.is_empty() && !target.is_empty(), "degenerate pair");
            // ---- forward ----
            state.h.clear();
            state.h.resize(h, 0.0);
            state.c.clear();
            if matches!(self.encoder, Cell::Lstm(_)) {
                state.c.resize(h, 0.0);
            }
            while enc_caches.len() < input.len() {
                enc_caches.push(self.encoder.empty_cache());
            }
            for (i, x) in input.iter().enumerate() {
                let before = input[i.saturating_sub(1)];
                self.encoder.forward_step_ws(
                    &step_features(*x, before),
                    state,
                    next,
                    &mut enc_caches[i],
                    s1,
                    wt_enc,
                );
                mem::swap(state, next);
            }
            let seq_out = target.len();
            while dec_caches.len() < seq_out {
                dec_caches.push(self.decoder.empty_cache());
            }
            while dec_h.len() < seq_out {
                dec_h.push(Vec::new());
            }
            preds.clear();
            let mut prev = *input.last().expect("non-empty");
            let mut before = input[input.len().saturating_sub(2)];
            for (t, tgt) in target.iter().enumerate() {
                self.decoder.forward_step_ws(
                    &step_features(prev, before),
                    state,
                    next,
                    &mut dec_caches[t],
                    s1,
                    wt_dec,
                );
                mem::swap(state, next);
                dec_h[t].clear();
                dec_h[t].extend_from_slice(&state.h);
                self.head.forward_into(&state.h, y);
                // Residual head: prediction = previous location + delta.
                preds.push([prev[0] + y[0], prev[1] + y[1]]);
                // Teacher forcing: the next decoder input is ground truth.
                before = prev;
                prev = *tgt;
            }

            // ---- loss ----
            dy.clear();
            for t in 0..seq_out {
                let (l, g) = loss.step(preds[t], target[t], seq_out);
                total_loss += l;
                dy.push(g);
            }

            // ---- backward through decoder ----
            dh.clear();
            dh.resize(h, 0.0);
            dc.clear();
            if matches!(self.decoder, Cell::Lstm(_)) {
                dc.resize(h, 0.0);
            }
            for t in (0..seq_out).rev() {
                self.head
                    .backward_into(&dec_h[t], &dy[t], head_grad, dh_head);
                for k in 0..h {
                    dh[k] += dh_head[k];
                }
                self.decoder.backward_step_ws(
                    &dec_caches[t],
                    dh,
                    dc,
                    dec_grad,
                    dh_prev,
                    dc_prev,
                    s1,
                    s2,
                    s3,
                    s4,
                    s5,
                );
                mem::swap(dh, dh_prev);
                mem::swap(dc, dc_prev);
            }
            // ---- backward through encoder ----
            for cache in enc_caches[..input.len()].iter().rev() {
                self.encoder.backward_step_ws(
                    cache, dh, dc, enc_grad, dh_prev, dc_prev, s1, s2, s3, s4, s5,
                );
                mem::swap(dh, dh_prev);
                mem::swap(dc, dc_prev);
            }
        }

        let inv = 1.0 / batch.len() as f64;
        flat.clear();
        Cell::grad_into(enc_grad, flat, inv);
        Cell::grad_into(dec_grad, flat, inv);
        flat.extend(head_grad.dw.as_slice().iter().map(|g| g * inv));
        flat.extend(head_grad.db.iter().map(|g| g * inv));
        total_loss * inv
    }

    /// Mean loss over a batch under teacher forcing, without gradients
    /// (query-set evaluation).
    pub fn loss_only(&self, batch: &TrainBatch, loss: &dyn Loss) -> f64 {
        assert!(!batch.is_empty(), "empty batch");
        let h = self.cfg.hidden;
        let _ = h;
        let mut total = 0.0;
        for (input, target) in &batch.pairs {
            let mut state = self.encoder.zero_state(self.cfg.hidden);
            for (i, x) in input.iter().enumerate() {
                let before = input[i.saturating_sub(1)];
                let (next, _) = self
                    .encoder
                    .forward_step(&step_features(*x, before), &state);
                state = next;
            }
            let mut prev = *input.last().expect("non-empty");
            let mut before = input[input.len().saturating_sub(2)];
            for tgt in target {
                let (next, _) = self
                    .decoder
                    .forward_step(&step_features(prev, before), &state);
                state = next;
                let y = self.head.forward(&state.h);
                let (l, _) = loss.step([prev[0] + y[0], prev[1] + y[1]], *tgt, target.len());
                total += l;
                before = prev;
                prev = *tgt;
            }
        }
        total / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::MseLoss;
    use tamp_core::rng::rng_for;

    fn tiny_model(seed: u64) -> Seq2Seq {
        let mut rng = rng_for(seed, 0);
        Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng)
    }

    fn line_batch() -> TrainBatch {
        // Deterministic straight-line motion: next point continues the line.
        let mut pairs = Vec::new();
        for s in 0..8 {
            let start = s as f64 * 0.01;
            let input: Vec<Pt2> = (0..4).map(|i| [start + i as f64 * 0.05, 0.5]).collect();
            let target: Vec<Pt2> = (4..6).map(|i| [start + i as f64 * 0.05, 0.5]).collect();
            pairs.push((input, target));
        }
        TrainBatch::new(pairs)
    }

    #[test]
    fn params_round_trip() {
        let model = tiny_model(1);
        let p = model.params();
        assert_eq!(p.len(), model.n_params());
        let mut other = tiny_model(2);
        assert_ne!(other.params(), p);
        other.set_params(&p);
        assert_eq!(other.params(), p);
        // Behaviour matches too.
        let input = [[0.1, 0.2], [0.2, 0.3]];
        assert_eq!(model.predict(&input, 3), other.predict(&input, 3));
    }

    #[test]
    fn predict_emits_requested_length() {
        let model = tiny_model(3);
        let out = model.predict(&[[0.5, 0.5]], 4);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let model = tiny_model(4);
        let batch = TrainBatch::new(vec![(
            vec![[0.1, 0.2], [0.15, 0.25], [0.2, 0.3]],
            vec![[0.25, 0.35], [0.3, 0.4]],
        )]);
        let (l0, grad) = model.loss_and_grad(&batch, &MseLoss);
        assert!(l0 > 0.0);

        let p = model.params();
        let eps = 1e-6;
        // Sample a spread of parameter indices across all blocks.
        let n = p.len();
        let idxs = [0, n / 7, n / 3, n / 2, 2 * n / 3, 5 * n / 6, n - 1];
        for &i in &idxs {
            let mut plus = model.clone();
            let mut pp = p.clone();
            pp[i] += eps;
            plus.set_params(&pp);
            let mut minus = model.clone();
            let mut pm = p.clone();
            pm[i] -= eps;
            minus.set_params(&pm);
            let (lp, _) = plus.loss_and_grad(&batch, &MseLoss);
            let (lm, _) = minus.loss_and_grad(&batch, &MseLoss);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-5,
                "param {i}: fd={fd} analytic={}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let mut model = tiny_model(5);
        let batch = line_batch();
        let (initial, _) = model.loss_and_grad(&batch, &MseLoss);
        let mut params = model.params();
        for _ in 0..200 {
            model.set_params(&params);
            let (_, grad) = model.loss_and_grad(&batch, &MseLoss);
            for (p, g) in params.iter_mut().zip(&grad) {
                *p -= 0.5 * g;
            }
        }
        model.set_params(&params);
        let (trained, _) = model.loss_and_grad(&batch, &MseLoss);
        assert!(
            trained < initial * 0.2,
            "training should cut loss by 5x: {initial} → {trained}"
        );
    }

    #[test]
    fn loss_only_matches_loss_and_grad() {
        let model = tiny_model(6);
        let batch = line_batch();
        let (l, _) = model.loss_and_grad(&batch, &MseLoss);
        let l2 = model.loss_only(&batch, &MseLoss);
        assert!((l - l2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty training batch")]
    fn empty_batch_panics() {
        let model = tiny_model(7);
        model.loss_and_grad(&TrainBatch::default(), &MseLoss);
    }

    #[test]
    fn tape_reuse_is_bitwise_identical_across_models_and_cells() {
        // One tape driven through repeated calls, different batches, and
        // both cell families must reproduce the allocating path exactly.
        let mut rng = rng_for(8, 0);
        let lstm = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let gru = Seq2Seq::new(Seq2SeqConfig::gru(5), &mut rng);
        let batch_a = line_batch();
        let batch_b = TrainBatch::new(vec![(
            vec![[0.9, 0.1], [0.8, 0.2], [0.7, 0.3], [0.6, 0.4], [0.5, 0.5]],
            vec![[0.4, 0.6], [0.3, 0.7], [0.2, 0.8]],
        )]);

        let mut tape = Tape::new();
        for model in [&lstm, &gru] {
            for batch in [&batch_a, &batch_b] {
                for _ in 0..2 {
                    let (l_ref, g_ref) = model.loss_and_grad(batch, &MseLoss);
                    let l_ws = model.loss_and_grad_ws(batch, &MseLoss, &mut tape);
                    assert_eq!(l_ws, l_ref);
                    assert_eq!(tape.grad(), &g_ref[..]);
                }
            }
        }
    }

    #[test]
    fn cached_weight_transposes_invalidate_on_set_params() {
        // An SGD loop that reuses one tape (transposes cached per weight
        // update) must stay bitwise identical to the allocating path that
        // rebuilds them every call.
        let mut model = tiny_model(9);
        let batch = line_batch();
        let mut tape = model.make_tape();
        for step in 0..4 {
            let (l_ref, g_ref) = model.loss_and_grad(&batch, &MseLoss);
            // Call twice: the second hits the cached transposes.
            for _ in 0..2 {
                let l_ws = model.loss_and_grad_ws(&batch, &MseLoss, &mut tape);
                assert_eq!(l_ws, l_ref, "step {step}");
                assert_eq!(tape.grad(), &g_ref[..], "step {step}");
            }
            let mut p = model.params();
            for (v, g) in p.iter_mut().zip(&g_ref) {
                *v -= 0.1 * g;
            }
            model.set_params(&p); // draws a fresh tag → cache invalidated
        }
        // A clone shares its source's tag: the warm tape may keep its
        // cached transposes and must still match a cold one.
        let clone = model.clone();
        let l_warm = clone.loss_and_grad_ws(&batch, &MseLoss, &mut tape);
        let mut cold = Tape::new();
        let l_cold = clone.loss_and_grad_ws(&batch, &MseLoss, &mut cold);
        assert_eq!(l_warm, l_cold);
        assert_eq!(tape.grad(), cold.grad());
    }
}

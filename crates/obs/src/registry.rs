//! Named metrics: counters, gauges, and log-bucketed latency histograms,
//! plus the serialisable [`TelemetrySnapshot`] taken at end of run.
//!
//! Histograms bucket values geometrically at 8 sub-buckets per octave
//! (~±4.4 % relative quantile error) — precise enough for p50/p95/p99
//! latency reporting while keeping a histogram at a fixed 3.5 KiB.

use crate::json::{obj, parse, JsonValue};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sub-buckets per power of two.
const SUB: f64 = 8.0;
/// Lowest representable bucket exponent (`value ≈ 2^(LO/SUB)` ≈ 1.5e-5).
const LO: i32 = -128;
/// One past the highest bucket exponent (`2^(HI/SUB)` ≈ 1.1e12).
const HI: i32 = 320;
/// Bucket count: one zero/underflow bucket plus the geometric range.
const N_BUCKETS: usize = (HI - LO) as usize + 1;

fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0; // zero / negative / non-finite → underflow bucket
    }
    let e = (v.log2() * SUB).floor() as i32;
    (e.clamp(LO, HI - 1) - LO) as usize + 1
}

/// Geometric midpoint of a bucket (its representative value).
fn bucket_mid(b: usize) -> f64 {
    if b == 0 {
        return 0.0;
    }
    2f64.powf(((b as i32 - 1 + LO) as f64 + 0.5) / SUB)
}

/// A log-bucketed histogram of non-negative values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, v: f64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Approximate quantile `q ∈ [0, 1]`; 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Exact extremes beat the bucket approximation at the ends.
                return bucket_mid(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freezes the histogram into quantile form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Frozen histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observed values.
    pub sum: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

/// Last-value gauge with running extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recent value.
    pub last: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
    /// Number of observations.
    pub count: u64,
}

impl GaugeStat {
    fn observe(&mut self, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    fn first(v: f64) -> Self {
        Self {
            last: v,
            min: v,
            max: v,
            count: 1,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter.
    pub fn count(&self, name: &str, n: u64) {
        let mut g = self.inner.lock().expect("obs lock");
        match g.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                g.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Sets the named gauge to `v`.
    pub fn gauge(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().expect("obs lock");
        match g.gauges.get_mut(name) {
            Some(s) => s.observe(v),
            None => {
                g.gauges.insert(name.to_string(), GaugeStat::first(v));
            }
        }
    }

    /// Records `v` into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().expect("obs lock");
        g.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("obs lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Freezes the whole registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let g = self.inner.lock().expect("obs lock");
        TelemetrySnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time, serialisable copy of every metric — the file the
/// `--metrics` CLI flag writes and `trace-validate` reconciles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge statistics by name.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histogram quantiles by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Serialises the snapshot to compact JSON.
    pub fn to_json(&self) -> String {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), JsonValue::Num(v as f64)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        obj([
                            ("last", JsonValue::Num(s.last)),
                            ("min", JsonValue::Num(s.min)),
                            ("max", JsonValue::Num(s.max)),
                            ("count", JsonValue::Num(s.count as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        obj([
                            ("count", JsonValue::Num(h.count as f64)),
                            ("sum", JsonValue::Num(h.sum)),
                            ("min", JsonValue::Num(h.min)),
                            ("max", JsonValue::Num(h.max)),
                            ("p50", JsonValue::Num(h.p50)),
                            ("p95", JsonValue::Num(h.p95)),
                            ("p99", JsonValue::Num(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
        .to_json()
    }

    /// Parses a snapshot serialised by [`TelemetrySnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let num = |o: &JsonValue, k: &str| -> Result<f64, String> {
            o.get(k)
                .and_then(JsonValue::as_num)
                .ok_or(format!("missing field {k}"))
        };
        let mut out = TelemetrySnapshot::default();
        for (k, c) in v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or("missing counters")?
        {
            out.counters.insert(
                k.clone(),
                c.as_u64().ok_or(format!("counter {k} not a u64"))?,
            );
        }
        for (k, g) in v
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or("missing gauges")?
        {
            out.gauges.insert(
                k.clone(),
                GaugeStat {
                    last: num(g, "last")?,
                    min: num(g, "min")?,
                    max: num(g, "max")?,
                    count: num(g, "count")? as u64,
                },
            );
        }
        for (k, h) in v
            .get("histograms")
            .and_then(JsonValue::as_obj)
            .ok_or("missing histograms")?
        {
            out.histograms.insert(
                k.clone(),
                HistogramSnapshot {
                    count: num(h, "count")? as u64,
                    sum: num(h, "sum")?,
                    min: num(h, "min")?,
                    max: num(h, "max")?,
                    p50: num(h, "p50")?,
                    p95: num(h, "p95")?,
                    p99: num(h, "p99")?,
                },
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_a_uniform_ramp() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // ±4.4 % bucket error plus discretisation slack.
        assert!((s.p50 / 500.0 - 1.0).abs() < 0.10, "p50 = {}", s.p50);
        assert!((s.p95 / 950.0 - 1.0).abs() < 0.10, "p95 = {}", s.p95);
        assert!((s.p99 / 990.0 - 1.0).abs() < 0.10, "p99 = {}", s.p99);
    }

    #[test]
    fn histogram_handles_edge_values() {
        let mut h = Histogram::default();
        for v in [0.0, -1.0, f64::NAN, 1e-30, 1e30, 42.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        // Quantiles stay within the observed (finite-clamped) range.
        assert!(s.p50.is_finite() && s.p99.is_finite());
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    fn bucket_mid_is_inside_its_bucket() {
        for v in [1e-4, 0.01, 1.0, 3.7, 1000.0, 1e9] {
            let b = bucket_of(v);
            let mid = bucket_mid(b);
            assert!(
                (mid / v).abs().log2().abs() <= 1.0 / SUB,
                "v={v} mid={mid} off by more than one bucket"
            );
        }
    }

    #[test]
    fn registry_accumulates_and_snapshots() {
        let r = MetricsRegistry::new();
        r.count("engine.fault.dropped_reports", 3);
        r.count("engine.fault.dropped_reports", 2);
        r.gauge("train.query_loss", 0.5);
        r.gauge("train.query_loss", 0.25);
        r.observe("engine.batch.matching_us", 120.0);
        r.observe("engine.batch.matching_us", 80.0);
        assert_eq!(r.counter_value("engine.fault.dropped_reports"), 5);
        let s = r.snapshot();
        assert_eq!(s.counters["engine.fault.dropped_reports"], 5);
        let g = s.gauges["train.query_loss"];
        assert_eq!((g.last, g.min, g.max, g.count), (0.25, 0.25, 0.5, 2));
        let h = s.histograms["engine.batch.matching_us"];
        assert_eq!(h.count, 2);
        assert!((h.sum - 200.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = MetricsRegistry::new();
        r.count("a.b", 7);
        r.gauge("c", -1.5);
        for i in 0..100 {
            r.observe("lat_us", 10.0 + i as f64);
        }
        let s = r.snapshot();
        let back = TelemetrySnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn snapshot_rejects_malformed_json() {
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(TelemetrySnapshot::from_json(r#"{"counters":{"a":-1}}"#).is_err());
        assert!(TelemetrySnapshot::from_json("nonsense").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = MetricsRegistry::new().snapshot();
        assert_eq!(TelemetrySnapshot::from_json(&s.to_json()).unwrap(), s);
    }
}

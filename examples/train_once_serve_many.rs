//! Train once, serve many: persisting the offline stage.
//!
//! The paper's platform trains mobility models offline and reuses them
//! online. This example runs the offline stage once, archives the
//! predictor set to JSON, reloads it, and proves the reloaded models
//! drive the online stage identically — the workflow a production
//! deployment would use across restarts.
//!
//! ```sh
//! cargo run --release --example train_once_serve_many
//! ```

use tamp::platform::training::TrainedPredictors;
use tamp::platform::{
    run_assignment, train_predictors, AssignmentAlgo, EngineConfig, TrainingConfig,
};
use tamp::sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("tamp_demo_artifacts");
    let workload_path = dir.join("city.json");
    let predictors_path = dir.join("predictors.json");

    // ---- offline stage (run once) ----
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 99).build();
    workload.save_json(&workload_path)?;
    let predictors = train_predictors(
        &workload,
        &TrainingConfig {
            seed: 99,
            ..TrainingConfig::default()
        },
    );
    predictors.save_json(&predictors_path)?;
    println!(
        "archived offline stage: {} models ({:.1}s training) → {}",
        predictors.models.len(),
        predictors.train_seconds,
        predictors_path.display()
    );

    // ---- a later process: reload and serve ----
    let workload2 = tamp::sim::Workload::load_json(&workload_path)?;
    let reloaded = TrainedPredictors::load_json(&predictors_path)?;
    let engine = EngineConfig::default();

    let fresh = run_assignment(&workload, Some(&predictors), AssignmentAlgo::Ppi, &engine);
    let served = run_assignment(&workload2, Some(&reloaded), AssignmentAlgo::Ppi, &engine);
    println!(
        "fresh run   : completion {:.3}, rejection {:.3}",
        fresh.completion_ratio(),
        fresh.rejection_ratio()
    );
    println!(
        "reloaded run: completion {:.3}, rejection {:.3}",
        served.completion_ratio(),
        served.rejection_ratio()
    );
    assert_eq!(
        fresh.completed, served.completed,
        "identical behaviour after reload"
    );
    assert_eq!(fresh.rejected, served.rejected);
    println!("reloaded predictors reproduce the fresh run exactly ✓");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

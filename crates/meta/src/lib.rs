//! # tamp-meta
//!
//! The paper's primary contribution: **game-theory-based task-adaptive
//! meta-learning** for worker-specific mobility prediction (Section
//! III-B), plus the baselines it is evaluated against.
//!
//! * [`learning_task`] — a learning task `Γᵢ` (one worker's prediction
//!   problem) with support/query splits, POI sequence and raw sample
//!   distribution.
//! * [`wasserstein`] — exact W1 distance between empirical 2-D
//!   distributions (computed as a min-cost assignment on subsamples).
//! * [`similarity`] — the three clustering factors: spatial kernel
//!   similarity `Sim_s` (Eq. 1), gradient-path similarity `Sim_l`
//!   (Eq. 2) and distribution similarity `Sim_d` (Eq. 3), each
//!   materialised as a symmetric [`similarity::SimMatrix`].
//! * [`quality`] — cluster quality `Q(G)` (Eq. 4) and the player
//!   utility `u(Γᵢ, G)` (Eq. 5).
//! * [`kmedoids`] — the k-medoids initialisation \[26\] used by GTMC, and a
//!   plain variant for the GTTAML-GT ablation.
//! * [`game`] — best-response dynamics finding a Nash equilibrium of the
//!   exact potential game (Theorem 1).
//! * [`tree`] — the learning-task tree (Definition 6).
//! * [`gtmc`] — Algorithm 1: Game-Theory-based Multi-level Clustering.
//! * [`meta_training`] — Algorithm 3: MAML-style meta-training within a
//!   cluster (first-order MAML; see DESIGN.md for the substitution note).
//! * [`second_order`] — full second-order MAML with finite-difference
//!   Hessian-vector products (the ablation target for the first-order
//!   substitution).
//! * [`sinkhorn`] — entropy-regularised optimal transport, a scalable
//!   alternative backend for `Sim_d` on large task sets.
//! * [`taml`] — Algorithm 2: recursive Task-Adaptive Meta-Learning over
//!   the tree.
//! * [`maml`] — the plain MAML baseline \[15\] and per-worker adaptation.
//! * [`ctml`] — the CTML baseline \[41\]: soft k-means over input-data
//!   features ⊕ parameter-update learning paths, then per-cluster MAML.
//! * [`cold_start`] — new-worker initialisation by most-similar tree
//!   node (the paper's cold-start path).
//! * [`eval`] — RMSE / MAE (grid cells) and matching rate of an adapted
//!   model on held-out data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cold_start;
pub mod ctml;
pub mod eval;
pub mod game;
pub mod gtmc;
pub mod kmedoids;
pub mod learning_task;
pub mod maml;
pub mod meta_training;
pub mod quality;
pub mod second_order;
pub mod similarity;
pub mod sinkhorn;
pub mod taml;
pub mod tree;
pub mod wasserstein;

pub use cold_start::{cold_start_delta, dedup_heads, DeltaWeights};
pub use gtmc::{build_tree, GtmcConfig};
pub use learning_task::LearningTask;
pub use meta_training::{resolve_threads, MetaConfig};
pub use similarity::{FactorKind, SimMatrix};
pub use tree::LearningTaskTree;

//! Cross-batch prediction caching.
//!
//! A worker's predicted trajectory is a pure function of (a) the model
//! parameters and (b) the observed report prefix the rollout starts
//! from. Between consecutive 2-minute batch windows both usually stay
//! unchanged — location reports arrive once per 10-minute time unit and
//! models only change on online-adaptation rounds — so an engine driver
//! (notably the long-running `tamp-serve` host) can reuse the previous
//! window's rollout verbatim instead of re-running the network. At the
//! paper's cadence that is up to ⌈10 / 2⌉ − 1 = 4 reuses per report.
//!
//! The cache key captures *exactly* the inputs of the rollout, which is
//! what makes cached and uncached runs byte-identical (property-tested
//! in `tests/cache_behaviour.rs` and the `tamp-serve` suite):
//!
//! * the **length of the observed prefix** — the received report stream
//!   is append-only within a run (even under delay faults, a report can
//!   arrive late but never un-arrive), so an equal length implies equal
//!   contents;
//! * the exact **bit pattern of the current anchor location** — it
//!   feeds the reachability clamp and the empty-history input, and it
//!   can change while the prefix length does not (the start-of-day
//!   registered-position fallback interpolates with `now`);
//! * the **rollout horizon** requested from the model;
//! * the worker's **model version** — a per-worker counter bumped
//!   whenever that worker's model parameters may have changed (an
//!   online-adaptation step, a quarantine rollback, or a hot-swapped
//!   predictor), so adaptation of one worker no longer throws away
//!   every other worker's rollouts.
//!
//! Two things still bypass the cache instead of keying it:
//!
//! * **fault-injected rollouts** (`RolloutFault::{Unavailable,Garbage}`)
//!   and persistence fallbacks depend on the batch index, not on the
//!   key, so caching them would change behaviour across windows;
//! * **degraded windows** (the serve layer's `DegradeToFallback`
//!   overload policy) force persistence views and skip the cache in
//!   both directions.
//!
//! The whole cache — entries, per-worker versions, and counters — is
//! serde-serializable so a serving shard's snapshot carries it verbatim
//! and a crash-restored run replays bit for bit, warm cache included.

use serde::{Deserialize, Serialize};
use tamp_core::Point;

/// Cumulative cache counters, mirrored into
/// [`crate::AssignmentMetrics`] at the end of a run and emitted by the
/// serve layer as `serve.cache.{hit,miss,invalidate}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Rollouts served from the cache.
    pub hits: u64,
    /// Cacheable rollouts that had to be computed.
    pub misses: u64,
    /// Live entries discarded because a worker's model version was
    /// bumped ([`PredictionCache::bump_version`]) or the cache was
    /// cleared wholesale ([`PredictionCache::invalidate_all`]).
    pub invalidations: u64,
}

/// The exact inputs of one worker's rollout (see the module docs for
/// why these fields determine the output bit for bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutKey {
    /// Number of observed reports feeding the input window.
    pub obs_len: usize,
    /// Bit pattern of the anchor location's easting.
    pub cur_x_bits: u64,
    /// Bit pattern of the anchor location's northing.
    pub cur_y_bits: u64,
    /// Requested rollout horizon (time units).
    pub horizon: usize,
    /// The worker's model version at rollout time
    /// ([`PredictionCache::version`]).
    pub model_version: u64,
}

impl RolloutKey {
    /// Builds the key for a worker whose input window is the last
    /// `seq_in` of `obs_len` observed reports anchored at `current`,
    /// rolled out by model version `model_version`.
    pub fn new(obs_len: usize, current: Point, horizon: usize, model_version: u64) -> Self {
        Self {
            obs_len,
            cur_x_bits: current.x.to_bits(),
            cur_y_bits: current.y.to_bits(),
            horizon,
            model_version,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    key: RolloutKey,
    predicted: Vec<Point>,
}

/// Per-worker cache of clamped model rollouts, valid across batch
/// windows until the key changes or that worker's model does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionCache {
    entries: Vec<Option<Entry>>,
    versions: Vec<u64>,
    stats: CacheStats,
}

impl PredictionCache {
    /// An empty cache with one slot per worker, all model versions 0.
    pub fn new(n_workers: usize) -> Self {
        Self {
            entries: vec![None; n_workers],
            versions: vec![0; n_workers],
            stats: CacheStats::default(),
        }
    }

    /// Worker `wi`'s current model version (0 for unknown workers).
    /// Callers fold this into [`RolloutKey::new`] so a bumped version
    /// can never match a stale entry even if the entry were kept.
    pub fn version(&self, wi: usize) -> u64 {
        self.versions.get(wi).copied().unwrap_or(0)
    }

    /// Records that worker `wi`'s model parameters may have changed
    /// (adaptation step, quarantine rollback, or predictor hot-swap):
    /// bumps the version and drops the worker's entry, counting an
    /// invalidation if one was live. Returns whether an entry was
    /// dropped. Other workers' entries are untouched — this is the
    /// point of per-worker versioning.
    pub fn bump_version(&mut self, wi: usize) -> bool {
        let Some(v) = self.versions.get_mut(wi) else {
            return false;
        };
        *v += 1;
        let dropped = self
            .entries
            .get_mut(wi)
            .is_some_and(|slot| slot.take().is_some());
        if dropped {
            self.stats.invalidations += 1;
        }
        dropped
    }

    /// Returns the cached rollout for worker `wi` if its key matches,
    /// counting a hit or a miss. Callers must only consult the cache for
    /// healthy (non-fault-injected, non-degraded) rollouts.
    pub fn lookup(&mut self, wi: usize, key: &RolloutKey) -> Option<Vec<Point>> {
        match self.entries.get(wi).and_then(Option::as_ref) {
            Some(e) if e.key == *key => {
                self.stats.hits += 1;
                Some(e.predicted.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly computed rollout for worker `wi`, replacing any
    /// stale entry.
    pub fn store(&mut self, wi: usize, key: RolloutKey, predicted: Vec<Point>) {
        if let Some(slot) = self.entries.get_mut(wi) {
            *slot = Some(Entry { key, predicted });
        }
    }

    /// Discards every entry without touching versions (a whole-cache
    /// reset; per-worker model changes should use
    /// [`Self::bump_version`] instead). Returns how many live entries
    /// were dropped.
    pub fn invalidate_all(&mut self) -> usize {
        let mut dropped = 0;
        for slot in &mut self.entries {
            if slot.take().is_some() {
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(obs_len: usize) -> RolloutKey {
        RolloutKey::new(obs_len, Point::new(1.0, 2.0), 4, 0)
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let mut c = PredictionCache::new(2);
        assert_eq!(c.lookup(0, &key(3)), None);
        c.store(0, key(3), vec![Point::new(0.5, 0.5)]);
        assert_eq!(c.lookup(0, &key(3)), Some(vec![Point::new(0.5, 0.5)]));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0
            }
        );
    }

    #[test]
    fn key_change_is_a_miss_and_store_replaces() {
        let mut c = PredictionCache::new(1);
        c.store(0, key(3), vec![Point::new(0.0, 0.0)]);
        assert_eq!(c.lookup(0, &key(4)), None, "longer prefix must miss");
        c.store(0, key(4), vec![Point::new(9.0, 9.0)]);
        assert_eq!(c.lookup(0, &key(4)), Some(vec![Point::new(9.0, 9.0)]));
        assert_eq!(c.lookup(0, &key(3)), None, "stale key was replaced");
    }

    #[test]
    fn anchor_bits_are_part_of_the_key() {
        let mut c = PredictionCache::new(1);
        let a = RolloutKey::new(0, Point::new(1.0, 1.0), 4, 0);
        let b = RolloutKey::new(0, Point::new(1.0 + f64::EPSILON, 1.0), 4, 0);
        c.store(0, a, vec![]);
        assert!(c.lookup(0, &b).is_none(), "different anchor bits must miss");
    }

    #[test]
    fn bump_version_evicts_only_that_worker() {
        let mut c = PredictionCache::new(3);
        c.store(0, key(1), vec![]);
        c.store(1, key(2), vec![]);
        assert!(c.bump_version(1), "live entry must be dropped");
        assert!(!c.bump_version(1), "second bump finds no entry");
        assert_eq!(c.version(1), 2, "every bump advances the version");
        assert_eq!(c.version(0), 0);
        assert_eq!(
            c.lookup(0, &key(1)),
            Some(vec![]),
            "other workers keep their entries"
        );
        assert_eq!(c.lookup(1, &key(2)), None);
        assert_eq!(c.stats().invalidations, 1, "only live drops are counted");
    }

    #[test]
    fn bumped_version_can_never_match_a_stale_key() {
        let mut c = PredictionCache::new(1);
        let stale = RolloutKey::new(3, Point::new(1.0, 2.0), 4, c.version(0));
        c.store(0, stale, vec![Point::new(0.1, 0.1)]);
        c.bump_version(0);
        let fresh = RolloutKey::new(3, Point::new(1.0, 2.0), 4, c.version(0));
        assert_ne!(stale, fresh, "version is part of the key");
        assert_eq!(c.lookup(0, &fresh), None);
    }

    #[test]
    fn invalidate_all_counts_live_entries_only() {
        let mut c = PredictionCache::new(3);
        c.store(0, key(1), vec![]);
        c.store(2, key(2), vec![]);
        assert_eq!(c.invalidate_all(), 2);
        assert_eq!(c.invalidate_all(), 0, "second pass finds nothing");
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.lookup(0, &key(1)), None);
    }

    #[test]
    fn out_of_range_worker_is_harmless() {
        let mut c = PredictionCache::new(1);
        c.store(7, key(1), vec![]);
        assert_eq!(c.lookup(7, &key(1)), None);
        assert!(!c.bump_version(7));
        assert_eq!(c.version(7), 0);
    }

    #[test]
    fn serde_round_trip_preserves_entries_versions_and_stats() {
        let mut c = PredictionCache::new(2);
        c.store(0, key(3), vec![Point::new(0.5, 0.5)]);
        c.bump_version(1);
        let _ = c.lookup(0, &key(3));
        let json = serde_json::to_string(&c).unwrap();
        let mut back: PredictionCache = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stats(), c.stats());
        assert_eq!(back.version(1), 1);
        assert_eq!(back.lookup(0, &key(3)), Some(vec![Point::new(0.5, 0.5)]));
    }
}

//! Per-span-name head sampling for recorders, with exact-count
//! corrections — keeps ×128-load traces bounded without breaking the
//! `trace-validate` reconciliation invariants.
//!
//! [`SamplingRecorder`] wraps any [`Recorder`] and passes through the
//! first `head` events *per name and kind*; beyond that:
//!
//! * **count** events are dropped but their increments accumulate, and
//!   [`Recorder::flush`] re-emits one catch-up `count` event under the
//!   *original* name — so per-name counter sums in a sampled trace are
//!   **exactly** equal to the unsampled ones (sampled ≡ unsampled for
//!   counters).
//! * **span** events are dropped and tallied; flush emits a
//!   `obs.sampled.<name>` correction counter holding the number of
//!   dropped spans, so span counts remain reconcilable
//!   (`trace spans + correction == histogram count`).
//! * **gauge** events are dropped except that flush re-emits the *last*
//!   dropped value per name — the end-of-run value always survives.
//!
//! The cumulative [`crate::MetricsRegistry`] is unaffected: [`crate::Obs`]
//! updates it before the recorder sees the event, so snapshots stay
//! exact regardless of sampling.

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Name prefix of the dropped-span correction counters flush emits.
pub const SAMPLED_SPAN_PREFIX: &str = "obs.sampled.";

#[derive(Debug, Default)]
struct NameState {
    spans_seen: u64,
    spans_dropped: u64,
    counts_seen: u64,
    dropped_count_sum: u64,
    gauges_seen: u64,
    last_dropped_gauge: Option<(f64, Option<u64>)>,
}

/// A [`Recorder`] adaptor applying per-name head sampling with exact
/// corrections (see the module docs for the per-kind rules).
pub struct SamplingRecorder<R: Recorder> {
    inner: R,
    head: u64,
    state: Mutex<BTreeMap<String, NameState>>,
}

impl<R: Recorder> SamplingRecorder<R> {
    /// Wraps `inner`, passing through the first `head` events per name
    /// and kind (`head == 0` keeps only the flush-time corrections).
    pub fn new(inner: R, head: u64) -> Self {
        Self {
            inner,
            head,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped recorder.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Total events dropped so far (before their corrections).
    pub fn dropped(&self) -> u64 {
        let g = self.state.lock().expect("obs lock");
        g.values()
            .map(|s| {
                s.spans_dropped
                    + s.counts_seen.saturating_sub(self.head.min(s.counts_seen))
                    + s.gauges_seen.saturating_sub(self.head.min(s.gauges_seen))
            })
            .sum()
    }
}

impl<R: Recorder> Recorder for SamplingRecorder<R> {
    fn record(&self, event: &Event) {
        let mut g = self.state.lock().expect("obs lock");
        let st = g.entry(event.name.clone()).or_default();
        match event.kind {
            EventKind::Span => {
                st.spans_seen += 1;
                if st.spans_seen <= self.head {
                    drop(g);
                    self.inner.record(event);
                } else {
                    st.spans_dropped += 1;
                }
            }
            EventKind::Count => {
                st.counts_seen += 1;
                if st.counts_seen <= self.head {
                    drop(g);
                    self.inner.record(event);
                } else {
                    // Exact-sum correction re-emitted at flush.
                    st.dropped_count_sum += event.value as u64;
                }
            }
            EventKind::Gauge => {
                st.gauges_seen += 1;
                if st.gauges_seen <= self.head {
                    drop(g);
                    self.inner.record(event);
                } else {
                    st.last_dropped_gauge = Some((event.value, event.idx));
                }
            }
        }
    }

    fn flush(&self) {
        let mut corrections = Vec::new();
        {
            let mut g = self.state.lock().expect("obs lock");
            for (name, st) in g.iter_mut() {
                if st.dropped_count_sum > 0 {
                    corrections.push(Event::count(name.clone(), st.dropped_count_sum, None));
                    st.dropped_count_sum = 0;
                }
                if st.spans_dropped > 0 {
                    corrections.push(Event::count(
                        format!("{SAMPLED_SPAN_PREFIX}{name}"),
                        st.spans_dropped,
                        None,
                    ));
                    st.spans_dropped = 0;
                }
                if let Some((v, idx)) = st.last_dropped_gauge.take() {
                    corrections.push(Event::gauge(name.clone(), v, idx));
                }
            }
        }
        for ev in &corrections {
            self.inner.record(ev);
        }
        self.inner.flush();
    }
}

impl<R: Recorder> Drop for SamplingRecorder<R> {
    fn drop(&mut self) {
        // Corrections must land before the inner recorder's own
        // flush-on-drop; fields drop after this body.
        Recorder::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanData;
    use crate::recorder::MemoryRecorder;
    use std::collections::BTreeMap;

    fn span_event(name: &str, id: u64) -> Event {
        Event {
            kind: EventKind::Span,
            name: name.into(),
            value: 0.0,
            idx: None,
            span: Some(SpanData {
                id,
                parent: None,
                start_us: id * 10,
                dur_us: 5,
            }),
        }
    }

    fn counter_sums(events: &[Event]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for e in events {
            if e.kind == EventKind::Count {
                *out.entry(e.name.clone()).or_default() += e.value as u64;
            }
        }
        out
    }

    #[test]
    fn counter_sums_reconcile_exactly() {
        let sampled = SamplingRecorder::new(MemoryRecorder::new(), 3);
        let direct = MemoryRecorder::new();
        for i in 0..100u64 {
            let ev = Event::count("serve.shed", i % 5, Some(i));
            sampled.record(&ev);
            direct.record(&ev);
        }
        Recorder::flush(&sampled);
        let want = counter_sums(&direct.events());
        let got = counter_sums(&sampled.inner().events());
        assert_eq!(got["serve.shed"], want["serve.shed"]);
        // And far fewer raw lines.
        assert!(sampled.inner().len() < direct.len());
    }

    #[test]
    fn span_drops_emit_correction_counters() {
        let sampled = SamplingRecorder::new(MemoryRecorder::new(), 2);
        for i in 0..10 {
            sampled.record(&span_event("serve.batch", i + 1));
        }
        assert_eq!(sampled.dropped(), 8);
        Recorder::flush(&sampled);
        let events = sampled.inner().events();
        let spans = events.iter().filter(|e| e.kind == EventKind::Span).count() as u64;
        let correction = counter_sums(&events)
            .get("obs.sampled.serve.batch")
            .copied()
            .unwrap_or(0);
        assert_eq!(spans, 2);
        assert_eq!(spans + correction, 10, "spans + correction == true count");
    }

    #[test]
    fn last_gauge_value_survives_sampling() {
        let sampled = SamplingRecorder::new(MemoryRecorder::new(), 1);
        for v in [1.0, 2.0, 3.0, 42.0] {
            sampled.record(&Event::gauge("depth", v, None));
        }
        Recorder::flush(&sampled);
        let last = sampled
            .inner()
            .events()
            .iter()
            .rfind(|e| e.kind == EventKind::Gauge && e.name == "depth")
            .map(|e| e.value);
        assert_eq!(last, Some(42.0));
    }

    #[test]
    fn flush_is_idempotent() {
        let sampled = SamplingRecorder::new(MemoryRecorder::new(), 1);
        for i in 0..5 {
            sampled.record(&span_event("s", i + 1));
            sampled.record(&Event::count("c", 2, None));
        }
        Recorder::flush(&sampled);
        let after_first = sampled.inner().len();
        Recorder::flush(&sampled);
        assert_eq!(sampled.inner().len(), after_first);
    }

    /// Deterministic xorshift64* — the crate is dependency-free, so the
    /// randomised reconciliation check rolls its own generator.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[test]
    fn random_streams_reconcile_for_every_seed_and_head() {
        let names = ["a", "b.c", "serve.batch", "x"];
        for seed in 1..=20u64 {
            for head in [0u64, 1, 3, 17, 1000] {
                let mut rng = XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15));
                let sampled = SamplingRecorder::new(MemoryRecorder::new(), head);
                let direct = MemoryRecorder::new();
                let mut span_id = 0;
                for _ in 0..300 {
                    let name = names[(rng.next() % names.len() as u64) as usize];
                    let ev = match rng.next() % 3 {
                        0 => {
                            span_id += 1;
                            span_event(name, span_id)
                        }
                        1 => Event::count(name, rng.next() % 7, None),
                        _ => Event::gauge(name, (rng.next() % 100) as f64, None),
                    };
                    sampled.record(&ev);
                    direct.record(&ev);
                }
                Recorder::flush(&sampled);
                let sampled_events = sampled.inner().events();
                let direct_events = direct.events();

                // Counters: exact equality per name (the satellite's
                // "sampled ≡ unsampled for counters" property).
                let mut got = counter_sums(&sampled_events);
                let want = counter_sums(&direct_events);
                for name in names {
                    let correction = got.remove(&format!("{SAMPLED_SPAN_PREFIX}{name}"));
                    assert_eq!(
                        got.get(name).copied().unwrap_or(0),
                        want.get(name).copied().unwrap_or(0),
                        "seed {seed} head {head} name {name}"
                    );
                    // Spans: surviving spans + correction == true count.
                    let true_spans = direct_events
                        .iter()
                        .filter(|e| e.kind == EventKind::Span && e.name == name)
                        .count() as u64;
                    let kept_spans = sampled_events
                        .iter()
                        .filter(|e| e.kind == EventKind::Span && e.name == name)
                        .count() as u64;
                    assert_eq!(
                        kept_spans + correction.unwrap_or(0),
                        true_spans,
                        "seed {seed} head {head} name {name}"
                    );
                }
                assert!(sampled_events.len() <= direct_events.len() + names.len() * 2);
            }
        }
    }
}

//! Behavioural tests of the telemetry layer as wired through the
//! platform: determinism modulo wall-clock, fault-counter reconciliation
//! between the event stream / the metrics registry / `AssignmentMetrics`,
//! the `algo_seconds` alias, and serialisation round-trips.

use rand::Rng;
use tamp_core::rng::rng_for;
use tamp_meta::meta_training::MetaConfig;
use tamp_obs::{Event, EventKind, Obs, TelemetrySnapshot};
use tamp_platform::{
    run_assignment_observed, train_predictors, train_predictors_observed, AssignmentAlgo,
    AssignmentMetrics, BatchRecord, EngineConfig, FaultConfig, LossKind, PredictionAlgo,
    TrainingConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_training(seed: u64) -> TrainingConfig {
    TrainingConfig {
        algo: PredictionAlgo::Maml,
        loss: LossKind::Mse,
        hidden: 6,
        seq_in: 3,
        meta: MetaConfig {
            iterations: 2,
            ..MetaConfig::default()
        },
        adapt_steps: 2,
        seed,
        ..TrainingConfig::default()
    }
}

fn engine() -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        ..EngineConfig::default()
    }
}

fn random_faults(seed: u64) -> FaultConfig {
    let mut rng = rng_for(seed, 77);
    FaultConfig {
        report_loss: rng.gen_range(0.0..0.3),
        report_delay: rng.gen_range(0.0..0.3),
        max_delay_min: rng.gen_range(5.0..20.0),
        gps_noise_km: rng.gen_range(0.0..0.1),
        corrupt_coord: rng.gen_range(0.0..0.1),
        offline_worker: rng.gen_range(0.0..0.3),
        offline_window_min: rng.gen_range(20.0..60.0),
        prediction_failure: rng.gen_range(0.0..0.3),
        prediction_garbage: rng.gen_range(0.0..0.1),
        adapt_poison: 0.0,
        shard_crash: 0.0,
        seed,
    }
}

/// One full traced pipeline (training + assignment) on the given seed;
/// returns the recorded events, the end-of-run snapshot, and the metrics.
fn traced_run(
    seed: u64,
    faults: Option<&FaultConfig>,
) -> (Vec<Event>, TelemetrySnapshot, AssignmentMetrics) {
    let (obs, mem) = Obs::in_memory();
    let w = tiny_workload(seed);
    let p = train_predictors_observed(&w, &quick_training(seed), &obs);
    let m = run_assignment_observed(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &engine(),
        faults,
        None,
        &obs,
    )
    .expect("engine run");
    obs.flush();
    (mem.events(), obs.snapshot(), m)
}

/// Identically seeded runs emit identical event sequences — same names,
/// kinds, values, span ids, parent links, and indices; only the
/// wall-clock fields (`t_us`, `dur_us`) may differ.
#[test]
fn identical_seeds_give_identical_event_sequences() {
    let faults = random_faults(41);
    let (ev_a, snap_a, m_a) = traced_run(41, Some(&faults));
    let (ev_b, snap_b, m_b) = traced_run(41, Some(&faults));
    assert!(!ev_a.is_empty(), "traced run produced no events");
    assert_eq!(ev_a.len(), ev_b.len(), "event counts diverge");
    for (i, (a, b)) in ev_a.iter().zip(&ev_b).enumerate() {
        assert_eq!(
            a.without_wall_clock(),
            b.without_wall_clock(),
            "event {i} diverges between identically seeded runs"
        );
    }
    // Counters and histogram counts (not timings) also replay exactly.
    assert_eq!(snap_a.counters, snap_b.counters);
    for (name, h) in &snap_a.histograms {
        assert_eq!(h.count, snap_b.histograms[name].count, "histogram {name}");
    }
    assert_eq!(m_a.completed, m_b.completed);
}

/// The three views of fault accounting — summed `count` events, the
/// registry snapshot, and `AssignmentMetrics` — agree under random
/// fault configurations.
#[test]
fn fault_counters_reconcile_across_event_stream_snapshot_and_metrics() {
    for seed in [11u64, 12, 13] {
        let faults = random_faults(seed);
        let (events, snapshot, metrics) = traced_run(seed, Some(&faults));

        let mut sums: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for ev in &events {
            if ev.kind == EventKind::Count {
                *sums.entry(ev.name.clone()).or_default() += ev.value as u64;
            }
        }
        let sum = |name: &str| sums.get(name).copied().unwrap_or(0);

        // Event stream vs AssignmentMetrics.
        let expected: [(&str, usize); 6] = [
            ("engine.fault.dropped_reports", metrics.dropped_reports),
            ("engine.fault.fallback_views", metrics.fallback_views),
            ("engine.fault.invalid_pairs", metrics.invalid_pairs),
            (
                "engine.fault.quarantined_models",
                metrics.quarantined_models,
            ),
            ("engine.assign.proposed", metrics.assigned_total),
            ("engine.assign.rejected", metrics.rejected),
        ];
        for (name, want) in expected {
            assert_eq!(
                sum(name),
                want as u64,
                "seed {seed}: counter {name} does not reconcile with AssignmentMetrics"
            );
        }

        // Event stream vs registry snapshot: every counter the registry
        // holds must equal the sum of its count events (zero-valued
        // counts are skipped at emission, so iterate the snapshot side).
        for (name, value) in &snapshot.counters {
            assert_eq!(
                sum(name),
                *value,
                "seed {seed}: counter {name} diverges from the snapshot"
            );
        }
    }
}

/// `algo_seconds` is kept as an exact alias of the summed matching
/// stage so pre-telemetry consumers keep reading the same number.
#[test]
fn algo_seconds_aliases_summed_matching_stage() {
    let w = tiny_workload(21);
    let p = train_predictors(&w, &quick_training(21));
    let mut trace = Vec::new();
    let m = run_assignment_observed(
        &w,
        Some(&p),
        AssignmentAlgo::Km,
        &engine(),
        None,
        Some(&mut trace),
        &Obs::null(),
    )
    .expect("engine run");
    assert_eq!(m.algo_seconds, m.stages.matching_s);
    let summed: f64 = trace.iter().map(|r| r.stages.matching_s).sum();
    assert!(
        (m.stages.matching_s - summed).abs() < 1e-9,
        "aggregate matching_s {} != per-batch sum {}",
        m.stages.matching_s,
        summed
    );
    // Stage timings are populated (carry/snapshot run every batch).
    assert!(m.stages.total_s() > 0.0, "stage timings were not recorded");
}

/// `TelemetrySnapshot` survives its own JSON codec (which is also what
/// `--metrics` writes and `trace-validate` reads back).
#[test]
fn telemetry_snapshot_json_round_trips() {
    let (_, snapshot, _) = traced_run(31, None);
    assert!(!snapshot.counters.is_empty());
    assert!(!snapshot.histograms.is_empty());
    let back = TelemetrySnapshot::from_json(&snapshot.to_json()).expect("parse snapshot");
    assert_eq!(back.counters, snapshot.counters);
    assert_eq!(back.gauges.len(), snapshot.gauges.len());
    for (name, h) in &snapshot.histograms {
        let b = &back.histograms[name];
        assert_eq!(b.count, h.count, "histogram {name} count");
        assert!((b.p50 - h.p50).abs() < 1e-9, "histogram {name} p50");
    }
}

/// serde stubs (the offline shadow workspace) serialise everything to
/// `null`; the serde-based round-trips only mean something against the
/// real serde_json.
fn serde_is_stubbed() -> bool {
    serde_json::to_string(&1u32)
        .map(|s| s != "1")
        .unwrap_or(true)
}

/// `BatchRecord` (with its nested `StageTimings`) round-trips through
/// serde, and records missing the new `stages` field still parse.
#[test]
fn batch_record_serde_round_trips() {
    if serde_is_stubbed() {
        eprintln!("note: serde_json is stubbed; skipping");
        return;
    }
    let w = tiny_workload(22);
    let p = train_predictors(&w, &quick_training(22));
    let mut trace = Vec::new();
    run_assignment_observed(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &engine(),
        Some(&random_faults(22)),
        Some(&mut trace),
        &Obs::null(),
    )
    .expect("engine run");
    assert!(!trace.is_empty());
    let json = serde_json::to_string(&trace).expect("serialize trace");
    let back: Vec<BatchRecord> = serde_json::from_str(&json).expect("parse trace");
    assert_eq!(back.len(), trace.len());
    for (a, b) in trace.iter().zip(&back) {
        assert_eq!(a.proposed, b.proposed);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.dropped_reports, b.dropped_reports);
        assert_eq!(a.stages.matching_s, b.stages.matching_s);
        assert_eq!(a.stages.carry_s, b.stages.carry_s);
    }
    // Pre-telemetry records (no `stages` key) still deserialise.
    let legacy: BatchRecord =
        serde_json::from_str("{\"t_min\":5.0,\"pending\":3}").expect("parse legacy record");
    assert_eq!(legacy.pending, 3);
    assert_eq!(legacy.stages.total_s(), 0.0);
}

/// `AssignmentMetrics` round-trips through serde with stage timings and
/// the `algo_seconds` alias intact.
#[test]
fn assignment_metrics_serde_round_trips() {
    if serde_is_stubbed() {
        eprintln!("note: serde_json is stubbed; skipping");
        return;
    }
    let w = tiny_workload(23);
    let p = train_predictors(&w, &quick_training(23));
    let m = run_assignment_observed(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &engine(),
        None,
        None,
        &Obs::null(),
    )
    .expect("engine run");
    let json = serde_json::to_string(&m).expect("serialize metrics");
    let back: AssignmentMetrics = serde_json::from_str(&json).expect("parse metrics");
    assert_eq!(back.tasks_total, m.tasks_total);
    assert_eq!(back.assigned_total, m.assigned_total);
    assert_eq!(back.algo_seconds, m.algo_seconds);
    assert_eq!(back.stages.matching_s, m.stages.matching_s);
    assert_eq!(back.stages.snapshot_s, m.stages.snapshot_s);
    assert_eq!(back.algo_seconds, back.stages.matching_s);
}

/// A disabled handle leaves results bit-identical to an enabled one —
/// telemetry observes, it never steers.
#[test]
fn telemetry_does_not_change_assignment_results() {
    let w = tiny_workload(24);
    let p = train_predictors(&w, &quick_training(24));
    let faults = random_faults(24);
    let run = |obs: &Obs| {
        run_assignment_observed(
            &w,
            Some(&p),
            AssignmentAlgo::Ppi,
            &engine(),
            Some(&faults),
            None,
            obs,
        )
        .expect("engine run")
    };
    let (obs, _mem) = Obs::in_memory();
    let off = run(&Obs::null());
    let on = run(&obs);
    assert_eq!(off.tasks_total, on.tasks_total);
    assert_eq!(off.assigned_total, on.assigned_total);
    assert_eq!(off.completed, on.completed);
    assert_eq!(off.rejected, on.rejected);
    assert_eq!(off.total_detour_km, on.total_detour_km);
    assert_eq!(off.dropped_reports, on.dropped_reports);
    assert_eq!(off.fallback_views, on.fallback_views);
}

//! Learning tasks `Γ` (Section III-B).
//!
//! A learning task wraps one worker's mobility-prediction problem: the
//! support/query split of their historical `(seq_in, seq_out)` pairs
//! (Definition 3), the POI sequence backing the spatial feature, and the
//! raw location samples backing the distribution feature.

use rand::seq::SliceRandom;
use rand::Rng;
use tamp_core::{Grid, Poi, Point, Routine, WorkerId};
use tamp_nn::loss::Pt2;
use tamp_nn::TrainBatch;

/// One worker's learning task `Γᵢ`.
#[derive(Debug, Clone)]
pub struct LearningTask {
    /// The worker this task belongs to.
    pub worker_id: WorkerId,
    /// Support set (adaptation data), normalised coordinates.
    pub support: TrainBatch,
    /// Query set (meta-objective data), normalised coordinates.
    pub query: TrainBatch,
    /// POI sequence `Vᵢ` (spatial feature, Eq. 1).
    pub poi_seq: Vec<Poi>,
    /// Raw kilometre-space samples of the worker's trajectory
    /// (distribution feature, Eq. 3).
    pub sample_points: Vec<Point>,
    /// Whether the worker is a cold-start newcomer.
    pub is_new: bool,
}

impl LearningTask {
    /// Builds a learning task from per-day history routines.
    ///
    /// Training pairs are sampled within each day (never across the
    /// midnight gap), normalised by `grid`, shuffled, and split
    /// `support_frac` / `1 − support_frac`. A worker whose history is too
    /// short for even one pair yields empty batches; callers filter those.
    #[allow(clippy::too_many_arguments)]
    pub fn from_history(
        worker_id: WorkerId,
        history_days: &[Routine],
        poi_seq: Vec<Poi>,
        grid: &Grid,
        seq_in: usize,
        seq_out: usize,
        support_frac: f64,
        is_new: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!((0.0..=1.0).contains(&support_frac), "bad support fraction");
        let mut pairs: Vec<(Vec<Pt2>, Vec<Pt2>)> = Vec::new();
        let mut sample_points = Vec::new();
        for day in history_days {
            sample_points.extend(day.points().iter().map(|p| p.loc));
            for (input, target) in day.training_pairs(seq_in, seq_out) {
                let ni = input.iter().map(|p| norm(grid, *p)).collect();
                let no = target.iter().map(|p| norm(grid, *p)).collect();
                pairs.push((ni, no));
            }
        }
        pairs.shuffle(rng);
        let n_support = ((pairs.len() as f64) * support_frac).round() as usize;
        let n_support = n_support.min(pairs.len());
        let query_pairs = pairs.split_off(n_support);
        Self {
            worker_id,
            support: TrainBatch::new(pairs),
            query: TrainBatch::new(query_pairs),
            poi_seq,
            sample_points,
            is_new,
        }
    }

    /// Whether the task has both support and query data.
    pub fn is_trainable(&self) -> bool {
        !self.support.is_empty() && !self.query.is_empty()
    }

    /// Takes at most `n` support pairs (for adapt-step batching).
    pub fn support_batch(&self, n: usize, rng: &mut impl Rng) -> TrainBatch {
        sample_batch(&self.support, n, rng)
    }

    /// Takes at most `n` query pairs.
    pub fn query_batch(&self, n: usize, rng: &mut impl Rng) -> TrainBatch {
        sample_batch(&self.query, n, rng)
    }

    /// [`LearningTask::support_batch`] into a caller-owned batch whose
    /// pair buffers are reused across calls. Draws and contents are
    /// identical to the allocating variant.
    pub fn support_batch_into(&self, n: usize, rng: &mut impl Rng, out: &mut TrainBatch) {
        sample_batch_into(&self.support, n, rng, out)
    }

    /// [`LearningTask::query_batch`] into a caller-owned batch.
    pub fn query_batch_into(&self, n: usize, rng: &mut impl Rng, out: &mut TrainBatch) {
        sample_batch_into(&self.query, n, rng, out)
    }
}

fn sample_batch(batch: &TrainBatch, n: usize, rng: &mut impl Rng) -> TrainBatch {
    if batch.len() <= n {
        return batch.clone();
    }
    let picks = rand::seq::index::sample(rng, batch.len(), n);
    TrainBatch::new(picks.iter().map(|i| batch.pairs[i].clone()).collect())
}

/// [`sample_batch`] writing into `out`, reusing its pair allocations.
/// Consumes the RNG exactly as [`sample_batch`] does (one index sample
/// when the source is larger than `n`, nothing otherwise), and produces
/// the same pairs in the same order.
fn sample_batch_into(batch: &TrainBatch, n: usize, rng: &mut impl Rng, out: &mut TrainBatch) {
    let count = batch.len().min(n);
    out.pairs.truncate(count);
    while out.pairs.len() < count {
        out.pairs.push((Vec::new(), Vec::new()));
    }
    if batch.len() <= n {
        for (dst, src) in out.pairs.iter_mut().zip(&batch.pairs) {
            dst.0.clone_from(&src.0);
            dst.1.clone_from(&src.1);
        }
    } else {
        let picks = rand::seq::index::sample(rng, batch.len(), n);
        for (dst, i) in out.pairs.iter_mut().zip(picks.iter()) {
            dst.0.clone_from(&batch.pairs[i].0);
            dst.1.clone_from(&batch.pairs[i].1);
        }
    }
}

#[inline]
fn norm(grid: &Grid, p: Point) -> Pt2 {
    let (x, y) = grid.normalize(p);
    [x, y]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;
    use tamp_core::{Minutes, TimedPoint};

    fn day(n: usize, offset: f64) -> Routine {
        Routine::from_points(
            (0..n)
                .map(|i| {
                    TimedPoint::new(
                        Point::new(i as f64 * 0.5 + offset, 5.0),
                        Minutes::new(i as f64 * 10.0),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn pairs_do_not_cross_days() {
        let days = vec![day(10, 0.0), day(10, 10.0)];
        let mut rng = rng_for(1, 0);
        let task = LearningTask::from_history(
            WorkerId(1),
            &days,
            vec![],
            &Grid::PAPER,
            3,
            1,
            0.7,
            false,
            &mut rng,
        );
        // Per day: 10 − 4 + 1 = 7 pairs → 14 total.
        assert_eq!(task.support.len() + task.query.len(), 14);
        assert!(task.is_trainable());
        assert_eq!(task.sample_points.len(), 20);
    }

    #[test]
    fn split_fractions_respected() {
        let days = vec![day(14, 0.0)];
        let mut rng = rng_for(2, 0);
        let task = LearningTask::from_history(
            WorkerId(1),
            &days,
            vec![],
            &Grid::PAPER,
            2,
            1,
            0.5,
            false,
            &mut rng,
        );
        // 12 pairs → 6 support / 6 query.
        assert_eq!(task.support.len(), 6);
        assert_eq!(task.query.len(), 6);
    }

    #[test]
    fn short_history_yields_untrainable_task() {
        let days = vec![day(2, 0.0)];
        let mut rng = rng_for(3, 0);
        let task = LearningTask::from_history(
            WorkerId(1),
            &days,
            vec![],
            &Grid::PAPER,
            5,
            2,
            0.7,
            true,
            &mut rng,
        );
        assert!(!task.is_trainable());
        assert!(task.is_new);
    }

    #[test]
    fn coordinates_are_normalised() {
        let days = vec![day(8, 0.0)];
        let mut rng = rng_for(4, 0);
        let task = LearningTask::from_history(
            WorkerId(1),
            &days,
            vec![],
            &Grid::PAPER,
            2,
            1,
            1.0,
            false,
            &mut rng,
        );
        for (i, o) in &task.support.pairs {
            for p in i.iter().chain(o) {
                assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
            }
        }
    }

    #[test]
    fn support_batch_caps_size() {
        let days = vec![day(20, 0.0)];
        let mut rng = rng_for(5, 0);
        let task = LearningTask::from_history(
            WorkerId(1),
            &days,
            vec![],
            &Grid::PAPER,
            2,
            1,
            1.0,
            false,
            &mut rng,
        );
        let b = task.support_batch(4, &mut rng);
        assert_eq!(b.len(), 4);
        let all = task.support_batch(10_000, &mut rng);
        assert_eq!(all.len(), task.support.len());
    }
}

//! Experiment output: markdown tables for the console, JSON for
//! EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Serialises any row set to pretty JSON at `path`, creating parent
/// directories as needed.
pub fn save_json<T: Serialize>(path: &Path, name: &str, rows: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let payload = serde_json::json!({
        "experiment": name,
        "crate_version": env!("CARGO_PKG_VERSION"),
        "rows": rows,
    });
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", serde_json::to_string_pretty(&payload)?)?;
    Ok(())
}

/// Prints a GitHub-flavoured markdown table.
pub fn print_markdown_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with 4 decimals for table cells.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 1 decimal for table cells (e.g. seconds).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_json_round_trips() {
        let dir = std::env::temp_dir().join("tamp_report_test");
        let path = dir.join("nested/rows.json");
        let rows = vec![serde_json::json!({"a": 1})];
        save_json(&path, "unit", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["experiment"], "unit");
        assert_eq!(v["rows"][0]["a"], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f1(12.34), "12.3");
    }
}

//! Regenerates **Table IV** of the paper: the clustering-algorithm ×
//! clustering-factor ablation (RMSE / MAE / MR / TT) on workload 1.

use tamp_bench::{default_training, out_dir, print_ablation, scale_from_env, seed_from_env};
use tamp_platform::experiments::{clustering_ablation, save_json};
use tamp_sim::{WorkloadConfig, WorkloadKind};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Table IV: clustering ablation (workload 1, {} workers, seed {seed})",
        scale.n_workers
    );
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    let rows = clustering_ablation(&workload, &default_training(seed));
    print_ablation(&rows);
    save_json(
        &out_dir().join("table4.json"),
        "table4_clustering_ablation_workload1",
        &rows,
    )
    .expect("write rows");
}

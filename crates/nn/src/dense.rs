//! An affine (fully-connected) layer used as the decoder's output head.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `y = W·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// `out × in` weights.
    pub w: Matrix,
    /// `out` biases.
    pub b: Vec<f64>,
}

/// Gradients of a [`Dense`] layer.
#[derive(Debug, Clone)]
pub struct DenseGrad {
    /// Gradient of `w`.
    pub dw: Matrix,
    /// Gradient of `b`.
    pub db: Vec<f64>,
}

impl DenseGrad {
    /// Zero gradients matching `layer`'s shape.
    pub fn zeros(layer: &Dense) -> Self {
        Self {
            dw: Matrix::zeros(layer.w.rows(), layer.w.cols()),
            db: vec![0.0; layer.b.len()],
        }
    }
}

impl Dense {
    /// A new layer with Xavier weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: Matrix::xavier(output_dim, input_dim, rng),
            b: vec![0.0; output_dim],
        }
    }

    /// Number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.w.rows()];
        self.forward_into(x, &mut y);
        y
    }

    /// [`Dense::forward`] into a caller-owned buffer (resized as needed).
    /// Bit-identical to the allocating variant.
    pub fn forward_into(&self, x: &[f64], y: &mut Vec<f64>) {
        y.resize(self.w.rows(), 0.0);
        self.w.matvec_into(x, y);
        for (yv, bv) in y.iter_mut().zip(&self.b) {
            *yv += bv;
        }
    }

    /// Backward pass: accumulates parameter gradients into `grad` and
    /// returns `dx`. `x` must be the input of the matching forward call.
    pub fn backward(&self, x: &[f64], dy: &[f64], grad: &mut DenseGrad) -> Vec<f64> {
        let mut dx = vec![0.0; self.w.cols()];
        self.backward_into(x, dy, grad, &mut dx);
        dx
    }

    /// [`Dense::backward`] into a caller-owned `dx` buffer.
    pub fn backward_into(&self, x: &[f64], dy: &[f64], grad: &mut DenseGrad, dx: &mut Vec<f64>) {
        grad.dw.add_outer(1.0, dy, x);
        for (gb, d) in grad.db.iter_mut().zip(dy) {
            *gb += d;
        }
        dx.resize(self.w.cols(), 0.0);
        self.w.matvec_t_into(dy, dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    #[test]
    fn forward_is_affine() {
        let layer = Dense {
            w: Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            b: vec![0.5, -0.5],
        };
        assert_eq!(layer.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = rng_for(8, 0);
        let layer = Dense::new(3, 2, &mut rng);
        let x = [0.3, -0.7, 0.2];
        // Objective: sum of outputs.
        let objective = |l: &Dense| l.forward(&x).iter().sum::<f64>();

        let mut grad = DenseGrad::zeros(&layer);
        let dx = layer.backward(&x, &[1.0, 1.0], &mut grad);

        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = layer.clone();
                plus.w.set(r, c, plus.w.get(r, c) + eps);
                let mut minus = layer.clone();
                minus.w.set(r, c, minus.w.get(r, c) - eps);
                let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
                assert!((fd - grad.dw.get(r, c)).abs() < 1e-7);
            }
        }
        // dx = Wᵀ·[1,1] — check against direct computation.
        let expect = layer.w.matvec_t(&[1.0, 1.0]);
        assert_eq!(dx, expect);
        assert_eq!(grad.db, vec![1.0, 1.0]);
    }
}

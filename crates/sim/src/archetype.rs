//! Latent mobility archetypes.
//!
//! Each synthetic worker belongs to one archetype that shapes their daily
//! routine. Archetypes are the ground-truth cluster structure the
//! meta-learner is supposed to discover — the paper's Challenge I observes
//! that worker mobility patterns vary systematically between workers, and
//! its clustering similarities (`Sim_d`, `Sim_s`, `Sim_l`) all key off
//! such differences.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tamp_core::{Grid, Point};

/// The latent mobility pattern of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchetypeKind {
    /// Home → work in the morning, work → home in the evening, with long
    /// dwells. Highly predictable.
    Commuter,
    /// Repeated loops through a handful of retail/food stops (couriers,
    /// delivery riders). Predictable but busier.
    CourierLoop,
    /// Random waypoints across the whole city (taxis between fares). The
    /// hardest pattern to predict.
    Roamer,
    /// Short errands inside one neighbourhood.
    Localized,
}

impl ArchetypeKind {
    /// All archetypes in stable order.
    pub const ALL: [ArchetypeKind; 4] = [
        ArchetypeKind::Commuter,
        ArchetypeKind::CourierLoop,
        ArchetypeKind::Roamer,
        ArchetypeKind::Localized,
    ];

    /// Stable index within [`ArchetypeKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|a| *a == self).expect("in ALL")
    }

    /// Standard deviation of the per-sample observation noise, in km.
    pub fn noise_km(self) -> f64 {
        match self {
            ArchetypeKind::Commuter => 0.08,
            ArchetypeKind::CourierLoop => 0.1,
            ArchetypeKind::Roamer => 0.2,
            ArchetypeKind::Localized => 0.06,
        }
    }

    /// Mean dwell at an anchor, in time units.
    pub fn dwell_units(self) -> f64 {
        match self {
            ArchetypeKind::Commuter => 9.0,
            ArchetypeKind::CourierLoop => 1.0,
            ArchetypeKind::Roamer => 1.5,
            ArchetypeKind::Localized => 3.0,
        }
    }

    /// Number of anchor locations the worker's day revolves around.
    pub fn n_anchors(self, rng: &mut impl Rng) -> usize {
        match self {
            ArchetypeKind::Commuter => 2,
            ArchetypeKind::CourierLoop => rng.gen_range(4..=6),
            ArchetypeKind::Roamer => rng.gen_range(5..=8),
            ArchetypeKind::Localized => rng.gen_range(2..=4),
        }
    }
}

/// A worker's realised archetype: the latent kind plus the personal
/// anchor locations their routine visits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPersona {
    /// The latent pattern.
    pub kind: ArchetypeKind,
    /// Personal anchor locations (home, work, regular stops...).
    pub anchors: Vec<Point>,
}

impl WorkerPersona {
    /// Samples a persona of the given kind inside the grid.
    ///
    /// Commuter homes are drawn from the western residential half and
    /// workplaces from the eastern office band so the population exhibits
    /// a realistic shared flow; localized workers pick a neighbourhood
    /// centre and tight satellites.
    pub fn sample(kind: ArchetypeKind, grid: &Grid, rng: &mut impl Rng) -> Self {
        let w = grid.width_km();
        let h = grid.height_km();
        let n = kind.n_anchors(rng);
        let anchors = match kind {
            ArchetypeKind::Commuter => {
                let home = Point::new(
                    rng.gen_range(0.05 * w..0.45 * w),
                    rng.gen_range(0.1 * h..0.9 * h),
                );
                let work = Point::new(
                    rng.gen_range(0.55 * w..0.95 * w),
                    rng.gen_range(0.2 * h..0.8 * h),
                );
                vec![home, work]
            }
            ArchetypeKind::CourierLoop => {
                // Stops scattered around a depot in the central band.
                let depot = Point::new(
                    rng.gen_range(0.3 * w..0.7 * w),
                    rng.gen_range(0.3 * h..0.7 * h),
                );
                let mut stops = vec![depot];
                for _ in 1..n {
                    stops.push(grid.clamp(Point::new(
                        depot.x + rng.gen_range(-0.3 * w..0.3 * w),
                        depot.y + rng.gen_range(-0.35 * h..0.35 * h),
                    )));
                }
                stops
            }
            ArchetypeKind::Roamer => (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..w), rng.gen_range(0.0..h)))
                .collect(),
            ArchetypeKind::Localized => {
                let center = Point::new(
                    rng.gen_range(0.1 * w..0.9 * w),
                    rng.gen_range(0.1 * h..0.9 * h),
                );
                let mut stops = vec![center];
                for _ in 1..n {
                    stops.push(grid.clamp(Point::new(
                        center.x + rng.gen_range(-1.2..1.2),
                        center.y + rng.gen_range(-1.2..1.2),
                    )));
                }
                stops
            }
        };
        Self { kind, anchors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    #[test]
    fn indexes_are_stable() {
        for (i, a) in ArchetypeKind::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
    }

    #[test]
    fn personas_stay_in_grid() {
        let grid = Grid::PAPER;
        let mut rng = rng_for(5, 0);
        for kind in ArchetypeKind::ALL {
            for _ in 0..50 {
                let p = WorkerPersona::sample(kind, &grid, &mut rng);
                assert!(!p.anchors.is_empty());
                for a in &p.anchors {
                    assert!(grid.contains(*a), "{kind:?} anchor {a:?} outside grid");
                }
            }
        }
    }

    #[test]
    fn commuter_flows_west_to_east() {
        let grid = Grid::PAPER;
        let mut rng = rng_for(6, 0);
        for _ in 0..20 {
            let p = WorkerPersona::sample(ArchetypeKind::Commuter, &grid, &mut rng);
            assert_eq!(p.anchors.len(), 2);
            assert!(p.anchors[0].x < p.anchors[1].x, "home west of work");
        }
    }

    #[test]
    fn localized_anchors_are_tight() {
        let grid = Grid::PAPER;
        let mut rng = rng_for(7, 0);
        for _ in 0..20 {
            let p = WorkerPersona::sample(ArchetypeKind::Localized, &grid, &mut rng);
            let c = p.anchors[0];
            for a in &p.anchors[1..] {
                assert!(c.dist(*a) < 2.5, "satellite too far: {}", c.dist(*a));
            }
        }
    }

    #[test]
    fn roamer_noise_is_highest() {
        let noisiest = ArchetypeKind::ALL
            .iter()
            .max_by(|a, b| a.noise_km().partial_cmp(&b.noise_km()).unwrap())
            .unwrap();
        assert_eq!(*noisiest, ArchetypeKind::Roamer);
    }
}

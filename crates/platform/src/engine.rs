//! The online batch assignment loop (Figure 1, "online task assignment").
//!
//! Time advances in 2-minute batch windows (Section IV-A). Each batch:
//!
//! 1. Newly released tasks join the pending pool; expired ones leave.
//! 2. Idle workers are snapshotted into [`WorkerView`]s: current
//!    location, the model's rollout of their next `predict_horizon` time
//!    units (from the last `seq_in` observed samples), and their
//!    validation `MR`.
//! 3. The configured assignment algorithm proposes a plan `M`.
//! 4. Each assigned worker accepts or rejects against their *real*
//!    itinerary ([`crate::acceptance`]); accepted tasks complete at the
//!    real detour cost, and the worker is busy until arrival.
//! 5. Rejected and unassigned tasks carry over to the next batch while
//!    still valid — the accumulation effect the paper describes for
//!    small detours.

use crate::acceptance::decide;
use crate::metrics::{AssignmentMetrics, BatchRecord};
use crate::training::TrainedPredictors;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use tamp_assign::baselines::{
    ggpso_assign_excluding, km_assign_excluding, lb_assign_excluding, ub_assign_excluding,
    GgpsoParams,
};
use tamp_assign::ppi::{ppi_assign_excluding, PpiParams};
use tamp_assign::view::{ExcludedPairs, WorkerView};
use tamp_core::rng::{rng_for, streams};
use tamp_core::{Minutes, Point, SpatialTask, TaskId, WorkerId, BATCH_WINDOW_MINUTES};
use tamp_nn::loss::Pt2;
use tamp_nn::{clip_grad_norm, MseLoss, Seq2Seq, TrainBatch};
use tamp_sim::Workload;

/// Which assignment algorithm the engine runs (the roster of Fig. 6–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignmentAlgo {
    /// Algorithm 4 (PPI).
    Ppi,
    /// Plain KM on predicted proximity.
    Km,
    /// The genetic baseline.
    Ggpso,
    /// Real-trajectory oracle (upper bound).
    Ub,
    /// Current-location only (lower bound).
    Lb,
}

/// Online continual-adaptation settings: the platform periodically
/// fine-tunes each worker's model on the movements observed *today*,
/// tracking intraday drift the offline stage could not see (an extension
/// beyond the paper's offline-only training — see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct OnlineAdaptConfig {
    /// Minutes between adaptation rounds.
    pub every_min: f64,
    /// SGD steps per round per worker.
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for OnlineAdaptConfig {
    fn default() -> Self {
        Self {
            every_min: 60.0,
            steps: 2,
            lr: 0.05,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Batch window length in minutes (paper: 2).
    pub batch_window_min: f64,
    /// Matching-rate radius `a` (km).
    pub a_km: f64,
    /// PPI stage-2 mini-batch size `ε`.
    pub epsilon: usize,
    /// How many future time units the models roll out per batch.
    pub predict_horizon: usize,
    /// Observed samples fed to the model (`seq_in`).
    pub seq_in: usize,
    /// GGPSO hyper-parameters.
    pub ggpso: GgpsoParams,
    /// Intraday model fine-tuning on observed movements; `None` keeps the
    /// offline models frozen (the paper's setting).
    pub online_adapt: Option<OnlineAdaptConfig>,
    /// How long a worker stays unavailable after rejecting an assignment,
    /// in minutes. Rejections cost the platform real capacity (the
    /// paper's motivation: rejections depress worker retention and
    /// participation), which is what makes low-rejection assignment
    /// valuable.
    pub rejection_cooldown_min: f64,
    /// RNG seed (GGPSO only).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            batch_window_min: BATCH_WINDOW_MINUTES,
            a_km: 0.4,
            epsilon: 8,
            predict_horizon: 4,
            seq_in: 5,
            ggpso: GgpsoParams::default(),
            online_adapt: None,
            rejection_cooldown_min: 10.0,
            seed: 0,
        }
    }
}

/// Runs one full simulated test day and returns the paper's four metrics.
///
/// `predictors` supplies per-worker models and matching rates; it may be
/// `None` only for the UB / LB baselines, which don't use predictions.
pub fn run_assignment(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
) -> AssignmentMetrics {
    run_assignment_inner(workload, predictors, algo, cfg, None)
}

/// Like [`run_assignment`], additionally recording one [`BatchRecord`]
/// per batch window into `trace` (for dashboards and load analysis).
pub fn run_assignment_traced(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    trace: &mut Vec<BatchRecord>,
) -> AssignmentMetrics {
    run_assignment_inner(workload, predictors, algo, cfg, Some(trace))
}

fn run_assignment_inner(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    algo: AssignmentAlgo,
    cfg: &EngineConfig,
    mut trace: Option<&mut Vec<BatchRecord>>,
) -> AssignmentMetrics {
    if !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb) {
        assert!(
            predictors.is_some(),
            "{algo:?} needs trained predictors"
        );
    }

    let mut metrics = AssignmentMetrics {
        tasks_total: workload.tasks.len(),
        ..Default::default()
    };
    // Online adaptation works on a private copy of the models so a run
    // never mutates the shared offline predictors.
    let mut live_models: Option<Vec<Seq2Seq>> = match (cfg.online_adapt, predictors) {
        (Some(_), Some(p)) => Some(p.models.clone()),
        _ => None,
    };
    let mut next_adapt = cfg.online_adapt.map(|oa| oa.every_min);
    let mut pending: Vec<SpatialTask> = Vec::new();
    let mut next_task = 0usize;
    let mut busy_until: HashMap<WorkerId, f64> = HashMap::new();
    let mut completed: HashSet<TaskId> = HashSet::new();
    // Pairs the worker already rejected; never proposed again (the
    // platform remembers refusals across batches).
    let mut refused: ExcludedPairs = ExcludedPairs::new();
    let mut rng = rng_for(cfg.seed, streams::GENETIC);

    let horizon = workload.horizon.as_f64();
    let mut t = 0.0;
    while t < horizon {
        let now = Minutes::new(t + cfg.batch_window_min);
        // 1. Admit newly released tasks; drop expired ones.
        while next_task < workload.tasks.len()
            && workload.tasks[next_task].release.as_f64() < now.as_f64()
        {
            pending.push(workload.tasks[next_task]);
            next_task += 1;
        }
        pending.retain(|task| task.deadline.as_f64() > now.as_f64() && !completed.contains(&task.id));

        let mut record = BatchRecord {
            t_min: now.as_f64(),
            pending: pending.len(),
            idle_workers: 0,
            proposed: 0,
            accepted: 0,
            rejected: 0,
        };

        if !pending.is_empty() {
            // 2. Snapshot idle workers.
            let mut views: Vec<WorkerView> = Vec::new();
            for (wi, sw) in workload.workers.iter().enumerate() {
                if busy_until.get(&sw.worker.id).copied().unwrap_or(f64::NEG_INFINITY)
                    > now.as_f64()
                {
                    continue;
                }
                if let Some(view) =
                    make_view(workload, predictors, live_models.as_deref(), wi, now, cfg)
                {
                    views.push(view);
                }
            }

            record.idle_workers = views.len();
            if !views.is_empty() {
                // 3. Assign.
                let start = Instant::now();
                let plan = match algo {
                    AssignmentAlgo::Ppi => ppi_assign_excluding(
                        &pending,
                        &views,
                        &PpiParams {
                            a_km: cfg.a_km,
                            epsilon: cfg.epsilon,
                            now,
                        },
                        &refused,
                    ),
                    AssignmentAlgo::Km => km_assign_excluding(&pending, &views, now, &refused),
                    AssignmentAlgo::Ggpso => ggpso_assign_excluding(
                        &pending,
                        &views,
                        now,
                        &cfg.ggpso,
                        &refused,
                        &mut rng,
                    ),
                    AssignmentAlgo::Ub => ub_assign_excluding(&pending, &views, now, &refused),
                    AssignmentAlgo::Lb => lb_assign_excluding(&pending, &views, now, &refused),
                };
                metrics.algo_seconds += start.elapsed().as_secs_f64();

                // 4. Acceptance against real itineraries.
                record.proposed = plan.len();
                for pair in plan.pairs() {
                    metrics.assigned_total += 1;
                    let task = pending
                        .iter()
                        .find(|tk| tk.id == pair.task)
                        .copied()
                        .expect("assigned task is pending");
                    let view = views
                        .iter()
                        .find(|v| v.id == pair.worker)
                        .expect("assigned worker was snapshotted");
                    match decide(
                        &view.real_future,
                        view.detour_limit_km,
                        view.speed_km_per_min,
                        &task,
                        now,
                    ) {
                        Some((detour, _arrival)) => {
                            record.accepted += 1;
                            metrics.completed += 1;
                            metrics.total_detour_km += detour;
                            completed.insert(task.id);
                            // The worker is occupied for the time the
                            // extra travel takes (they keep following
                            // their routine otherwise), at least one
                            // batch window.
                            let busy_min = tamp_core::time::travel_minutes(
                                detour,
                                view.speed_km_per_min,
                            )
                            .max(cfg.batch_window_min);
                            busy_until
                                .insert(pair.worker, now.as_f64() + busy_min);
                        }
                        None => {
                            record.rejected += 1;
                            metrics.rejected += 1;
                            // Task stays pending (carried to next batch)
                            // but this worker won't be asked again, and
                            // they disengage for a while.
                            refused.insert((task.id, pair.worker));
                            busy_until.insert(
                                pair.worker,
                                now.as_f64() + cfg.rejection_cooldown_min,
                            );
                        }
                    }
                }
                pending.retain(|task| !completed.contains(&task.id));
            }
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(record);
        }
        // Periodic intraday fine-tuning on the day's observations so far.
        if let (Some(oa), Some(models)) = (cfg.online_adapt, live_models.as_mut()) {
            if let Some(due) = next_adapt {
                if now.as_f64() >= due {
                    online_adapt_round(workload, models, predictors, now, cfg, &oa);
                    next_adapt = Some(due + oa.every_min);
                }
            }
        }
        t += cfg.batch_window_min;
    }
    metrics
}

/// Builds the worker view the assignment algorithms see at time `now`.
fn make_view(
    workload: &Workload,
    predictors: Option<&TrainedPredictors>,
    live_models: Option<&[Seq2Seq]>,
    wi: usize,
    now: Minutes,
    cfg: &EngineConfig,
) -> Option<WorkerView> {
    let sw = &workload.workers[wi];

    // Observed history so far today: the worker's periodic location
    // reports (one per 10-minute time unit). The platform never sees the
    // worker between reports — "when they are online, they merely share
    // their current location" (Section II) — so the freshest information
    // any algorithm has is the *last report*, which may be up to one time
    // unit stale. This is precisely the gap mobility prediction fills.
    let observed: Vec<Point> = sw
        .worker
        .real_routine
        .window(Minutes::ZERO, now)
        .iter()
        .map(|p| p.loc)
        .collect();
    let current = observed
        .last()
        .copied()
        .or_else(|| sw.worker.location_at(now))?;

    let predicted = match predictors {
        Some(p) => {
            let mut input: Vec<[f64; 2]> = observed
                .iter()
                .rev()
                .take(cfg.seq_in)
                .rev()
                .map(|pt| {
                    let (x, y) = workload.grid.normalize(*pt);
                    [x, y]
                })
                .collect();
            if input.is_empty() {
                let (x, y) = workload.grid.normalize(current);
                input.push([x, y]);
            }
            // Rollout, clamped to the grid and to physical reachability:
            // the worker cannot be farther from their current position
            // than speed × elapsed time.
            let speed_per_unit =
                sw.worker.speed_km_per_min * tamp_core::time::TIME_UNIT_MINUTES;
            live_models
                .map_or(&p.models[wi], |ms| &ms[wi])
                .predict(&input, cfg.predict_horizon)
                .into_iter()
                .enumerate()
                .map(|(k, o)| {
                    let raw = workload.grid.clamp(workload.grid.denormalize(o[0], o[1]));
                    let max_range = speed_per_unit * (k + 1) as f64;
                    let d = current.dist(raw);
                    if d > max_range {
                        current.lerp(raw, max_range / d)
                    } else {
                        raw
                    }
                })
                .collect()
        }
        None => Vec::new(),
    };

    // Ground-truth remainder of the day (acceptance + UB oracle).
    let real_future: Vec<tamp_core::TimedPoint> = sw
        .worker
        .real_routine
        .window(now, Minutes::new(f64::MAX))
        .to_vec();

    Some(WorkerView {
        id: sw.worker.id,
        current,
        predicted,
        real_future,
        mr: predictors.map_or(0.0, |p| p.mrs[wi]),
        detour_limit_km: sw.worker.detour_limit_km,
        speed_km_per_min: sw.worker.speed_km_per_min,
    })
}

/// One round of intraday fine-tuning: each worker's model takes a few
/// clipped SGD steps on `(seq_in, seq_out)` windows drawn from their
/// location reports observed so far today.
fn online_adapt_round(
    workload: &Workload,
    models: &mut [Seq2Seq],
    predictors: Option<&TrainedPredictors>,
    now: Minutes,
    cfg: &EngineConfig,
    oa: &OnlineAdaptConfig,
) {
    let seq_out = predictors.map_or(1, |p| p.seq_out.max(1));
    for (wi, sw) in workload.workers.iter().enumerate() {
        let observed = sw.worker.real_routine.window(Minutes::ZERO, now);
        if observed.len() < cfg.seq_in + seq_out {
            continue;
        }
        let pairs: Vec<(Vec<Pt2>, Vec<Pt2>)> = (0..=observed.len() - cfg.seq_in - seq_out)
            .map(|start| {
                let norm = |p: &tamp_core::TimedPoint| {
                    let (x, y) = workload.grid.normalize(p.loc);
                    [x, y]
                };
                let input = observed[start..start + cfg.seq_in].iter().map(norm).collect();
                let target = observed[start + cfg.seq_in..start + cfg.seq_in + seq_out]
                    .iter()
                    .map(norm)
                    .collect();
                (input, target)
            })
            .collect();
        if pairs.is_empty() {
            continue;
        }
        let batch = TrainBatch::new(pairs);
        let model = &mut models[wi];
        let mut theta = model.params();
        for _ in 0..oa.steps {
            model.set_params(&theta);
            let (_, mut g) = model.loss_and_grad(&batch, &MseLoss);
            clip_grad_norm(&mut g, 1.0);
            for (p, gv) in theta.iter_mut().zip(&g) {
                *p -= oa.lr * gv;
            }
        }
        model.set_params(&theta);
    }
}

/// Number of batch windows in a workload's day (diagnostics).
pub fn n_batches(workload: &Workload, cfg: &EngineConfig) -> usize {
    (workload.horizon.as_f64() / cfg.batch_window_min).ceil() as usize
}

/// A convenient bundle: run every algorithm of Fig. 6 on one workload.
pub fn run_all_algorithms(
    workload: &Workload,
    with_loss: &TrainedPredictors,
    with_mse: &TrainedPredictors,
    cfg: &EngineConfig,
) -> Vec<(String, AssignmentMetrics)> {
    vec![
        ("UB".into(), run_assignment(workload, None, AssignmentAlgo::Ub, cfg)),
        ("LB".into(), run_assignment(workload, None, AssignmentAlgo::Lb, cfg)),
        (
            "PPI".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Ppi, cfg),
        ),
        (
            "PPI-loss".into(),
            run_assignment(workload, Some(with_mse), AssignmentAlgo::Ppi, cfg),
        ),
        (
            "KM".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Km, cfg),
        ),
        (
            "KM-loss".into(),
            run_assignment(workload, Some(with_mse), AssignmentAlgo::Km, cfg),
        ),
        (
            "GGPSO".into(),
            run_assignment(workload, Some(with_loss), AssignmentAlgo::Ggpso, cfg),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_predictors, LossKind, PredictionAlgo, TrainingConfig};
    use tamp_meta::meta_training::MetaConfig;
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn tiny() -> Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 21).build()
    }

    fn quick_predictors(w: &Workload) -> TrainedPredictors {
        train_predictors(
            w,
            &TrainingConfig {
                algo: PredictionAlgo::Maml,
                loss: LossKind::Mse,
                hidden: 6,
                seq_in: 3,
                meta: MetaConfig {
                    iterations: 2,
                    ..MetaConfig::default()
                },
                adapt_steps: 2,
                seed: 9,
                ..TrainingConfig::default()
            },
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            seq_in: 3,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ub_completes_with_zero_rejections() {
        let w = tiny();
        let m = run_assignment(&w, None, AssignmentAlgo::Ub, &cfg());
        assert_eq!(m.rejected, 0, "UB checks real constraints");
        assert_eq!(m.rejection_ratio(), 0.0);
        assert!(m.completed > 0, "oracle should complete something");
        assert_eq!(m.completed, m.assigned_total);
    }

    #[test]
    fn metric_accounting_is_consistent() {
        let w = tiny();
        let p = quick_predictors(&w);
        for algo in [
            AssignmentAlgo::Ppi,
            AssignmentAlgo::Km,
            AssignmentAlgo::Lb,
            AssignmentAlgo::Ggpso,
        ] {
            let m = run_assignment(&w, Some(&p), algo, &cfg());
            assert_eq!(m.completed + m.rejected, m.assigned_total, "{algo:?}");
            assert!(m.completed <= m.tasks_total);
            assert!(m.completion_ratio() <= 1.0);
            assert!(m.rejection_ratio() <= 1.0);
            assert!(m.avg_worker_cost_km().is_finite());
        }
    }

    #[test]
    fn ub_dominates_lb_on_completion() {
        let w = tiny();
        let ub = run_assignment(&w, None, AssignmentAlgo::Ub, &cfg());
        let lb = run_assignment(&w, None, AssignmentAlgo::Lb, &cfg());
        assert!(
            ub.completion_ratio() >= lb.completion_ratio(),
            "UB {} must beat LB {}",
            ub.completion_ratio(),
            lb.completion_ratio()
        );
    }

    #[test]
    fn completed_detours_respect_limits() {
        let w = tiny();
        let p = quick_predictors(&w);
        let m = run_assignment(&w, Some(&p), AssignmentAlgo::Ppi, &cfg());
        if m.completed > 0 {
            let avg = m.avg_worker_cost_km();
            let limit = w.workers[0].worker.detour_limit_km;
            assert!(avg <= limit, "avg detour {avg} exceeds limit {limit}");
        }
    }

    #[test]
    #[should_panic(expected = "needs trained predictors")]
    fn prediction_algorithms_require_predictors() {
        let w = tiny();
        run_assignment(&w, None, AssignmentAlgo::Ppi, &cfg());
    }

    #[test]
    fn n_batches_counts_windows() {
        let w = tiny(); // 24 units × 10 min = 240 min / 2 min = 120
        assert_eq!(n_batches(&w, &cfg()), 120);
    }
}

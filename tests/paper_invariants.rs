//! Cross-crate tests of the paper's formal claims.
//!
//! These pin the theorem-level behaviour: the potential-game property
//! behind Theorem 1, the Lemma 1 geometry, the Theorem 2 feasibility
//! premise as used by PPI, and the loss-weighting claim of Section III-C.

use rand::Rng;
use tamp::assign::feasibility::{feasible_distances, theorem2_bound, FeasibilityParams};
use tamp::assign::view::WorkerView;
use tamp::core::geometry::detour_via;
use tamp::core::rng::rng_for;
use tamp::core::{Grid, Minutes, Point, SpatialTask, TaskId, WorkerId};
use tamp::meta::game::best_response;
use tamp::meta::quality::potential;
use tamp::meta::similarity::SimMatrix;
use tamp::nn::{Loss, MseLoss, TaskDensityMap, TaskOrientedLoss, WeightParams};

/// Lemma 1's geometric core: if `dis(l1, τ) ≤ a + b ≤ d/2`, the detour
/// through τ on any leg starting at l1 is `< d`.
#[test]
fn lemma1_detour_bound_holds() {
    let mut rng = rng_for(1, 0);
    for _ in 0..2000 {
        let d = rng.gen_range(1.0..10.0);
        let l1 = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0));
        let l2 = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0));
        // Place τ within d/2 of l1 (the a + b ≤ d/2 premise).
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let radius = rng.gen_range(0.0..d / 2.0);
        let tau = Point::new(l1.x + radius * angle.cos(), l1.y + radius * angle.sin());
        let detour = detour_via(l1, tau, l2);
        assert!(
            detour < d,
            "Lemma 1 violated: detour {detour} ≥ d {d} (radius {radius})"
        );
    }
}

/// Theorem 2 as PPI consumes it: every distance admitted to the set `B`
/// satisfies both the detour and the deadline premise.
#[test]
fn theorem2_premises_enforced() {
    let mut rng = rng_for(2, 0);
    for _ in 0..500 {
        let worker = WorkerView {
            id: WorkerId(1),
            current: Point::new(0.0, 0.0),
            predicted: (0..6)
                .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)))
                .collect(),
            real_future: Vec::new(),
            mr: 0.5,
            detour_limit_km: rng.gen_range(1.0..10.0),
            speed_km_per_min: 0.3,
        };
        let task = SpatialTask::new(
            TaskId(1),
            Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)),
            Minutes::ZERO,
            Minutes::new(rng.gen_range(5.0..60.0)),
        );
        let a_km = 0.4;
        let params = FeasibilityParams {
            a_km,
            now: Minutes::ZERO,
        };
        let bound = theorem2_bound(&worker, &task, Minutes::ZERO);
        assert!(bound <= worker.detour_limit_km / 2.0 + 1e-12);
        assert!(bound <= task.reach_radius(Minutes::ZERO, worker.speed_km_per_min) + 1e-12);
        for dist in feasible_distances(&worker, &task, &params) {
            assert!(dist + a_km <= bound + 1e-12, "B admits an infeasible point");
        }
    }
}

/// The exact-potential property behind Theorem 1, on random instances:
/// running the dynamics longer never lowers the potential, and the final
/// state is a Nash equilibrium.
#[test]
fn theorem1_potential_monotone_on_random_instances() {
    for seed in 0..10u64 {
        let mut rng = rng_for(seed, 3);
        let n = rng.gen_range(4..14usize);
        let raw: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let sim = SimMatrix::from_fn(n, |i, j| raw[i.min(j) * n + i.max(j)]);
        let gamma = 0.25;
        let initial: Vec<Vec<usize>> = vec![(0..n).collect()];
        let mut last = potential(&sim, &initial, gamma);
        for passes in 1..=8 {
            let out = best_response(&sim, initial.clone(), gamma, passes);
            let p = potential(&sim, &out.clusters, gamma);
            assert!(p >= last - 1e-9, "potential decreased at pass {passes}");
            last = last.max(p);
            if out.converged {
                break;
            }
        }
    }
}

/// Section III-C's claim: the weighted loss penalises errors in task-dense
/// regions more than identical errors in task deserts.
#[test]
fn weighted_loss_prioritises_task_dense_regions() {
    let grid = Grid::PAPER;
    // A dense hotspot around (5, 5).
    let hotspot: Vec<Point> = (0..500)
        .map(|i| Point::new(5.0 + (i % 20) as f64 * 0.05, 5.0 + (i / 20) as f64 * 0.05))
        .collect();
    let loss = TaskOrientedLoss::new(
        TaskDensityMap::build(grid, &hotspot),
        WeightParams::default(),
    );

    // Identical prediction error at the hotspot vs in the desert.
    let err = [0.01, 0.01];
    let hot_target = {
        let (x, y) = grid.normalize(Point::new(5.2, 5.2));
        [x, y]
    };
    let desert_target = {
        let (x, y) = grid.normalize(Point::new(18.0, 1.0));
        [x, y]
    };
    let (hot_l, _) = loss.step(
        [hot_target[0] + err[0], hot_target[1] + err[1]],
        hot_target,
        1,
    );
    let (desert_l, _) = loss.step(
        [desert_target[0] + err[0], desert_target[1] + err[1]],
        desert_target,
        1,
    );
    assert!(
        hot_l > desert_l * 1.5,
        "hotspot error {hot_l} should dominate desert error {desert_l}"
    );

    // And plain MSE treats them identically (the misalignment the paper
    // criticises).
    let (m1, _) = MseLoss.step(
        [hot_target[0] + err[0], hot_target[1] + err[1]],
        hot_target,
        1,
    );
    let (m2, _) = MseLoss.step(
        [desert_target[0] + err[0], desert_target[1] + err[1]],
        desert_target,
        1,
    );
    assert!((m1 - m2).abs() < 1e-12);
}

/// Definition 5's objective accounting: completion + rejection counts add
/// up, and assignment validity holds per batch (checked end-to-end in
/// `end_to_end.rs`; here on the raw algorithms with a crafted instance).
#[test]
fn ppi_plan_validity_on_crafted_contention() {
    use tamp::assign::ppi::{ppi_assign, PpiParams};
    // 5 tasks contending for 2 workers.
    let tasks: Vec<SpatialTask> = (0..5)
        .map(|i| {
            SpatialTask::new(
                TaskId(i),
                Point::new(1.0 + i as f64 * 0.1, 1.0),
                Minutes::ZERO,
                Minutes::new(60.0),
            )
        })
        .collect();
    let workers: Vec<WorkerView> = (0..2)
        .map(|i| WorkerView {
            id: WorkerId(i),
            current: Point::new(1.0, 1.0),
            predicted: vec![Point::new(1.0 + i as f64 * 0.2, 1.0)],
            real_future: Vec::new(),
            mr: 0.8,
            detour_limit_km: 6.0,
            speed_km_per_min: 0.3,
        })
        .collect();
    let plan = ppi_assign(
        &tasks,
        &workers,
        &PpiParams {
            a_km: 0.4,
            epsilon: 2,
            now: Minutes::ZERO,
            use_index: true,
        },
    );
    assert!(plan.is_valid());
    assert_eq!(plan.len(), 2, "both workers get exactly one task");
}

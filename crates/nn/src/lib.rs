//! # tamp-nn
//!
//! A deliberately small, dependency-free neural-network library built for
//! the TAMP reproduction. The paper's meta-learning framework is
//! *model-agnostic*: it only requires a sequence model trainable by
//! gradient descent whose parameters and gradients can be read and written
//! as flat vectors (MAML adapt steps, meta updates, and the gradient-path
//! similarity `Sim_l` of Eq. 2 all operate on those vectors).
//!
//! Provided here:
//!
//! * [`matrix`] — a row-major `f64` matrix with the handful of BLAS-1/2
//!   operations the models need.
//! * [`lstm`] — an LSTM cell with exact backpropagation through time.
//! * [`gru`] — a GRU cell (Cho et al.'s alternative recurrent substrate),
//!   same BPTT rigour, for users who want a lighter cell.
//! * [`dense`] — an affine output head.
//! * [`seq2seq`] — the paper's LSTM-Encoder-Decoder mobility model
//!   (Section III-B, "Discussion"): encoder consumes `seq_in` locations,
//!   decoder autoregressively emits `seq_out` locations.
//! * [`loss`] — plain MSE and the **task-assignment-oriented weighted
//!   loss** of Eq. 6–7, driven by a historical task-density map.
//! * [`optim`] — SGD and Adam over flat parameter vectors.
//!
//! The crate exposes every model's parameters via [`seq2seq::Seq2Seq::params`] /
//! [`seq2seq::Seq2Seq::set_params`] so that `tamp-meta` can implement MAML,
//! TAML and CTML without the models cooperating.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod batch;
pub mod delta;
pub mod dense;
pub mod fastmath;
pub mod gru;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod optim;
pub mod seq2seq;

pub use backend::KernelBackend;
pub use batch::{predict_batch, predict_batch_into, BatchTape, BatchedRollout};
pub use delta::DeltaWeights;
pub use loss::{Loss, MseLoss, TaskDensityMap, TaskOrientedLoss, WeightParams};
pub use matrix::Matrix;
pub use optim::{add_scaled, clip_grad_norm, sub_scaled, Adam, Optimizer, Sgd};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig, Tape, TrainBatch};

//! Entropy-regularised optimal transport (Sinkhorn iterations).
//!
//! The exact W1 estimator in [`crate::wasserstein`] solves an assignment
//! problem in O(n³); Sinkhorn trades a small bias (controlled by the
//! regularisation ε) for O(n² · iters) cost and is the standard scalable
//! alternative. `tamp` uses it as an opt-in backend for the distribution
//! similarity when task sets are large (see `bench_similarity` for the
//! crossover).
//!
//! Implementation notes: uniform marginals over the two subsamples,
//! log-domain-free with an ε floor, and the *sharp* transport cost
//! `⟨P, C⟩` (cost of the regularised plan under the true cost matrix),
//! which upper-bounds W1 and converges to it as ε → 0.

use tamp_core::Point;

/// Configuration for the Sinkhorn solver.
#[derive(Debug, Clone, Copy)]
pub struct SinkhornConfig {
    /// Entropic regularisation ε (same unit as the ground cost, km).
    pub epsilon: f64,
    /// Maximum Sinkhorn iterations.
    pub max_iters: usize,
    /// Stop when the marginal violation drops below this L1 threshold.
    pub tolerance: f64,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.25,
            max_iters: 200,
            tolerance: 1e-6,
        }
    }
}

/// Entropy-regularised transport cost between two point clouds under the
/// Euclidean ground metric, with uniform marginals.
///
/// Returns 0 for empty inputs. The result upper-bounds the exact W1 of
/// the same subsamples and approaches it as `epsilon → 0`.
pub fn sinkhorn_distance(a: &[Point], b: &[Point], cfg: &SinkhornConfig) -> f64 {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0.0;
    }
    // Cost and Gibbs kernel.
    let mut cost = vec![0.0; n * m];
    for (i, x) in a.iter().enumerate() {
        for (j, y) in b.iter().enumerate() {
            cost[i * m + j] = x.dist(*y);
        }
    }
    let eps = cfg.epsilon.max(1e-6);
    let kernel: Vec<f64> = cost.iter().map(|c| (-c / eps).exp().max(1e-300)).collect();

    let mu = 1.0 / n as f64;
    let nu = 1.0 / m as f64;
    let mut u = vec![1.0; n];
    let mut v = vec![1.0; m];

    for _ in 0..cfg.max_iters {
        // u ← μ / (K v)
        for i in 0..n {
            let mut kv = 0.0;
            for j in 0..m {
                kv += kernel[i * m + j] * v[j];
            }
            u[i] = mu / kv.max(1e-300);
        }
        // v ← ν / (Kᵀ u)
        for j in 0..m {
            let mut ku = 0.0;
            for i in 0..n {
                ku += kernel[i * m + j] * u[i];
            }
            v[j] = nu / ku.max(1e-300);
        }
        // Convergence: row-marginal violation of the implied plan.
        let mut violation = 0.0;
        for i in 0..n {
            let mut row = 0.0;
            for j in 0..m {
                row += u[i] * kernel[i * m + j] * v[j];
            }
            violation += (row - mu).abs();
        }
        if violation < cfg.tolerance {
            break;
        }
    }

    // Sharp cost ⟨P, C⟩.
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..m {
            total += u[i] * kernel[i * m + j] * v[j] * cost[i * m + j];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wasserstein::w1_distance_capped;
    use rand::Rng;
    use tamp_core::rng::rng_for;

    fn cloud(center: (f64, f64), n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rng_for(seed, 13);
        (0..n)
            .map(|_| {
                Point::new(
                    center.0 + rng.gen_range(-0.5..0.5),
                    center.1 + rng.gen_range(-0.5..0.5),
                )
            })
            .collect()
    }

    #[test]
    fn identical_clouds_near_zero() {
        let a = cloud((5.0, 5.0), 16, 1);
        let d = sinkhorn_distance(&a, &a, &SinkhornConfig::default());
        // Entropic smearing keeps it slightly above zero but small.
        assert!(d < 0.5, "self distance {d}");
    }

    #[test]
    fn tracks_exact_w1_on_separated_clouds() {
        let a = cloud((2.0, 5.0), 24, 2);
        let b = cloud((10.0, 5.0), 24, 3);
        let exact = w1_distance_capped(&a, &b, 24);
        let approx = sinkhorn_distance(&a, &b, &SinkhornConfig::default());
        let rel = (approx - exact).abs() / exact;
        assert!(rel < 0.1, "sinkhorn {approx} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn tighter_epsilon_is_closer_to_exact() {
        let a = cloud((2.0, 3.0), 20, 4);
        let b = cloud((7.0, 6.0), 20, 5);
        let exact = w1_distance_capped(&a, &b, 20);
        let loose = sinkhorn_distance(
            &a,
            &b,
            &SinkhornConfig {
                epsilon: 1.0,
                ..SinkhornConfig::default()
            },
        );
        let tight = sinkhorn_distance(
            &a,
            &b,
            &SinkhornConfig {
                epsilon: 0.1,
                ..SinkhornConfig::default()
            },
        );
        assert!(
            (tight - exact).abs() <= (loose - exact).abs() + 1e-9,
            "tight {tight}, loose {loose}, exact {exact}"
        );
    }

    #[test]
    fn symmetric_and_monotone_in_separation() {
        let a = cloud((2.0, 5.0), 16, 6);
        let near = cloud((4.0, 5.0), 16, 7);
        let far = cloud((14.0, 5.0), 16, 8);
        let cfg = SinkhornConfig::default();
        let d_near = sinkhorn_distance(&a, &near, &cfg);
        let d_far = sinkhorn_distance(&a, &far, &cfg);
        assert!(d_near < d_far);
        // Symmetric up to the row-based stopping rule (swapping the
        // inputs transposes the kernel, so the convergence check fires at
        // a slightly different iterate).
        let d_sym = sinkhorn_distance(&near, &a, &cfg);
        assert!(
            (d_near - d_sym).abs() / d_near.max(1e-9) < 1e-3,
            "{d_near} vs {d_sym}"
        );
    }

    #[test]
    fn empty_inputs_zero() {
        assert_eq!(sinkhorn_distance(&[], &[], &SinkhornConfig::default()), 0.0);
    }

    #[test]
    fn handles_unequal_sizes() {
        let a = cloud((3.0, 3.0), 10, 9);
        let b = cloud((3.0, 3.0), 25, 10);
        let d = sinkhorn_distance(&a, &b, &SinkhornConfig::default());
        assert!(d.is_finite() && d < 1.0);
    }
}

//! Micro-bench: PPI (multi-stage, repeated KM calls) vs a single KM
//! matching per batch — the ε-sensitivity the paper's Discussion of
//! Algorithm 4 describes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;
use tamp_assign::baselines::{km_assign, km_assign_indexed};
use tamp_assign::ppi::{ppi_assign, PpiParams};
use tamp_assign::view::ExcludedPairs;
use tamp_assign::view::WorkerView;
use tamp_core::rng::rng_for;
use tamp_core::{Minutes, Point, SpatialTask, TaskId, WorkerId};

fn setup(n_tasks: usize, n_workers: usize, seed: u64) -> (Vec<SpatialTask>, Vec<WorkerView>) {
    let mut rng = rng_for(seed, 0);
    let tasks = (0..n_tasks)
        .map(|i| {
            SpatialTask::new(
                TaskId(i as u64),
                Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)),
                Minutes::ZERO,
                Minutes::new(rng.gen_range(30.0..60.0)),
            )
        })
        .collect();
    let workers = (0..n_workers)
        .map(|i| {
            let base = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0));
            WorkerView {
                id: WorkerId(i as u64),
                current: base,
                predicted: (0..6)
                    .map(|k| base.offset(0.5 * k as f64, rng.gen_range(-0.4..0.4)))
                    .collect(),
                real_future: Vec::new(),
                mr: rng.gen_range(0.1..0.9),
                detour_limit_km: 6.0,
                speed_km_per_min: 0.3,
            }
        })
        .collect();
    (tasks, workers)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppi");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for &n in &[16usize, 48, 96, 256] {
        let (tasks, workers) = setup(n, n, n as u64);
        for &eps in &[2usize, 8, 32] {
            group.bench_with_input(BenchmarkId::new(format!("ppi_eps{eps}"), n), &n, |b, _| {
                let params = PpiParams {
                    a_km: 0.4,
                    epsilon: eps,
                    now: Minutes::ZERO,
                    use_index: true,
                };
                b.iter(|| black_box(ppi_assign(black_box(&tasks), black_box(&workers), &params)))
            });
        }
        group.bench_with_input(BenchmarkId::new("ppi_naive", n), &n, |b, _| {
            let params = PpiParams {
                a_km: 0.4,
                epsilon: 8,
                now: Minutes::ZERO,
                use_index: false,
            };
            b.iter(|| black_box(ppi_assign(black_box(&tasks), black_box(&workers), &params)))
        });
        group.bench_with_input(BenchmarkId::new("km_single", n), &n, |b, _| {
            b.iter(|| {
                black_box(km_assign(
                    black_box(&tasks),
                    black_box(&workers),
                    Minutes::ZERO,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("km_indexed", n), &n, |b, _| {
            let none = ExcludedPairs::new();
            b.iter(|| {
                black_box(km_assign_indexed(
                    black_box(&tasks),
                    black_box(&workers),
                    Minutes::ZERO,
                    &none,
                ))
            })
        });
    }
    group.finish();
}

/// Paper-scale candidate generation: 442 workers (the dataset's worker
/// count) against growing task backlogs, naive enumeration vs the bucket
/// index. Both produce byte-identical plans; only the probe count differs.
fn bench_paper_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppi_scale");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4));
    for &n_tasks in &[500usize, 1000] {
        let (tasks, workers) = setup(n_tasks, 442, n_tasks as u64);
        for (label, use_index) in [("naive", false), ("indexed", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("ppi442_{label}"), n_tasks),
                &n_tasks,
                |b, _| {
                    let params = PpiParams {
                        a_km: 0.4,
                        epsilon: 8,
                        now: Minutes::ZERO,
                        use_index,
                    };
                    b.iter(|| {
                        black_box(ppi_assign(black_box(&tasks), black_box(&workers), &params))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench, bench_paper_scale);
criterion_main!(benches);

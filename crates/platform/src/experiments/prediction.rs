//! Mobility-prediction experiments (Tables IV–VII).

use crate::training::{train_predictors, PredictionAlgo, TrainingConfig};
use serde::{Deserialize, Serialize};
use tamp_meta::similarity::FactorKind;
use tamp_sim::{Workload, WorkloadConfig};

/// One row of the clustering ablation (Table IV / VI).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// "GTMC" or "k-means".
    pub cluster_algorithm: String,
    /// Which of `Sim_d` / `Sim_s` / `Sim_l` were enabled.
    pub factors: Vec<String>,
    /// RMSE in grid cells.
    pub rmse: f64,
    /// MAE in grid cells.
    pub mae: f64,
    /// Matching rate.
    pub mr: f64,
    /// Training time, seconds.
    pub tt_seconds: f64,
    /// Leaf clusters produced.
    pub n_clusters: usize,
}

/// The paper's factor subsets for Table IV, in row order.
pub fn ablation_factor_sets() -> Vec<Vec<FactorKind>> {
    use FactorKind::*;
    vec![
        vec![Distribution],
        vec![Spatial],
        vec![LearningPath],
        vec![Distribution, Spatial],
        vec![Distribution, Spatial, LearningPath],
    ]
}

fn factor_names(fs: &[FactorKind]) -> Vec<String> {
    fs.iter()
        .map(|f| {
            match f {
                FactorKind::Distribution => "Sim_d",
                FactorKind::Spatial => "Sim_s",
                FactorKind::LearningPath => "Sim_l",
            }
            .to_string()
        })
        .collect()
}

/// Runs the clustering-algorithm × clustering-factor ablation
/// (Table IV on workload 1, Table VI on workload 2).
pub fn clustering_ablation(workload: &Workload, base: &TrainingConfig) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (algo, name) in [
        (PredictionAlgo::Gttaml, "GTMC"),
        (PredictionAlgo::GttamlGt, "k-means"),
    ] {
        for factors in ablation_factor_sets() {
            let cfg = TrainingConfig {
                algo,
                factors: factors.clone(),
                ..base.clone()
            };
            let p = train_predictors(workload, &cfg);
            rows.push(AblationRow {
                cluster_algorithm: name.to_string(),
                factors: factor_names(&factors),
                rmse: p.overall.rmse_cells,
                mae: p.overall.mae_cells,
                mr: p.overall.mr,
                tt_seconds: p.train_seconds,
                n_clusters: p.n_clusters,
            });
        }
    }
    rows
}

/// One row of the `seq_in`/`seq_out` sweep (Table V / VII).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqRow {
    /// Which parameter was swept ("seq_in" or "seq_out").
    pub swept: String,
    /// The swept value.
    pub value: usize,
    /// Algorithm name (MAML / CTML / GTTAML-GT / GTTAML).
    pub algorithm: String,
    /// RMSE in grid cells.
    pub rmse: f64,
    /// MAE in grid cells.
    pub mae: f64,
    /// Matching rate.
    pub mr: f64,
    /// Training time, seconds.
    pub tt_seconds: f64,
}

/// The paper's prediction-algorithm roster, in column order.
pub fn prediction_algorithms() -> Vec<(PredictionAlgo, &'static str)> {
    vec![
        (PredictionAlgo::Maml, "MAML"),
        (PredictionAlgo::Ctml, "CTML"),
        (PredictionAlgo::GttamlGt, "GTTAML-GT"),
        (PredictionAlgo::Gttaml, "GTTAML"),
    ]
}

/// Sweeps `seq_in` (with `seq_out` fixed at the base value) and then
/// `seq_out` (with `seq_in` fixed), training all four algorithms at each
/// point (Table V / VII).
///
/// `workload_for` rebuilds the workload — sequence lengths change the
/// learning tasks but not the city, so callers usually return the same
/// workload every time.
pub fn seq_sweep(
    workload_for: impl Fn() -> WorkloadConfig,
    base: &TrainingConfig,
    seq_ins: &[usize],
    seq_outs: &[usize],
) -> Vec<SeqRow> {
    let workload = workload_for().build();
    let mut rows = Vec::new();
    let mut run = |swept: &str, seq_in: usize, seq_out: usize| {
        for (algo, name) in prediction_algorithms() {
            let cfg = TrainingConfig {
                algo,
                seq_in,
                seq_out,
                ..base.clone()
            };
            let p = train_predictors(&workload, &cfg);
            rows.push(SeqRow {
                swept: swept.to_string(),
                value: if swept == "seq_in" { seq_in } else { seq_out },
                algorithm: name.to_string(),
                rmse: p.overall.rmse_cells,
                mae: p.overall.mae_cells,
                mr: p.overall.mr,
                tt_seconds: p.train_seconds,
            });
        }
    };
    for &si in seq_ins {
        run("seq_in", si, base.seq_out);
    }
    for &so in seq_outs {
        run("seq_out", base.seq_in, so);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::LossKind;
    use tamp_meta::meta_training::MetaConfig;
    use tamp_sim::{Scale, WorkloadKind};

    fn quick_base() -> TrainingConfig {
        TrainingConfig {
            loss: LossKind::Mse,
            hidden: 5,
            seq_in: 2,
            seq_out: 1,
            meta: MetaConfig {
                iterations: 1,
                batch_tasks: 2,
                ..MetaConfig::default()
            },
            path_steps: 2,
            adapt_steps: 1,
            seed: 2,
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn ablation_produces_ten_rows() {
        let w = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 17).build();
        let rows = clustering_ablation(&w, &quick_base());
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.rmse.is_finite() && r.mr >= 0.0));
        assert_eq!(rows[0].cluster_algorithm, "GTMC");
        assert_eq!(rows[9].cluster_algorithm, "k-means");
        assert_eq!(rows[4].factors.len(), 3);
    }

    #[test]
    fn seq_sweep_covers_grid() {
        let rows = seq_sweep(
            || WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 18),
            &quick_base(),
            &[1, 2],
            &[1],
        );
        // (2 seq_in + 1 seq_out points) × 4 algorithms.
        assert_eq!(rows.len(), 12);
        let algos: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(algos.len(), 4);
    }
}

#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
#
# Everything runs --offline: the workspace's dependency set is small and
# pinned (see CONTRIBUTING.md), and CI must not depend on a registry
# being reachable. Run `cargo fetch` once on a connected machine first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + test"
cargo build --release --workspace --offline
cargo test --workspace --offline -q

echo "== traced smoke run (telemetry schema + reconciliation)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --release -p tamp-cli --offline -q -- simulate \
    --kind porto --scale tiny --seed 7 --algo ppi \
    --trace "$SMOKE_DIR/trace.jsonl" --metrics "$SMOKE_DIR/telemetry.json" >/dev/null
cargo run --release -p tamp-cli --offline -q -- trace-validate \
    --trace "$SMOKE_DIR/trace.jsonl" --metrics "$SMOKE_DIR/telemetry.json"

echo "CI gate passed."

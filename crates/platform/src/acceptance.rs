//! The worker's accept/reject decision.
//!
//! Workers "can decide whether to accept the assigned task according to
//! his/her actual itinerary and acceptable detour distance w.d"
//! (Section II). Given the worker's real future path, the decision is:
//! accept iff some deviation leg serves the task within the detour limit
//! *and* reaches it before the deadline. The real detour of the best such
//! leg is the cost `d_c` recorded in `M'`.

use tamp_core::geometry::detour_via;
use tamp_core::time::travel_minutes;
use tamp_core::{Minutes, SpatialTask, TimedPoint};

/// The outcome of presenting `task` to a worker whose remaining real
/// itinerary is `future` (time-ordered, first point is where they are
/// around `now`).
///
/// Returns `Some((detour_km, arrival))` when the worker accepts:
/// `detour_km` is the real extra distance, `arrival` the time they reach
/// the task location. `None` means the worker rejects.
pub fn decide(
    future: &[TimedPoint],
    detour_limit_km: f64,
    speed_km_per_min: f64,
    task: &SpatialTask,
    now: Minutes,
) -> Option<(f64, Minutes)> {
    if future.is_empty() {
        return None;
    }
    let mut best: Option<(f64, Minutes)> = None;
    let mut consider = |detour: f64, depart_at: Minutes, from_dist: f64| {
        if detour > detour_limit_km {
            return;
        }
        let depart = depart_at.as_f64().max(now.as_f64());
        let arrival = depart + travel_minutes(from_dist, speed_km_per_min);
        if arrival < task.deadline.as_f64() {
            match best {
                Some((b, _)) if b <= detour => {}
                _ => best = Some((detour, Minutes::new(arrival))),
            }
        }
    };
    if future.len() == 1 {
        let p = future[0];
        let d = p.loc.dist(task.location);
        consider(2.0 * d, p.time, d);
        return best;
    }
    for leg in future.windows(2) {
        let (a, b) = (leg[0], leg[1]);
        let detour = detour_via(a.loc, task.location, b.loc);
        consider(detour, a.time, a.loc.dist(task.location));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::{Point, TaskId};

    fn future(points: &[(f64, f64)]) -> Vec<TimedPoint> {
        points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| TimedPoint::new(Point::new(x, y), Minutes::new(i as f64 * 10.0)))
            .collect()
    }

    fn task(x: f64, y: f64, deadline: f64) -> SpatialTask {
        SpatialTask::new(
            TaskId(1),
            Point::new(x, y),
            Minutes::ZERO,
            Minutes::new(deadline),
        )
    }

    #[test]
    fn accepts_on_path_task() {
        let f = future(&[(0.0, 0.0), (4.0, 0.0)]);
        let t = task(2.0, 0.0, 120.0);
        let (d, arrival) = decide(&f, 6.0, 0.3, &t, Minutes::ZERO).unwrap();
        assert!(d < 1e-9, "on-path detour is zero");
        // Departs at t=0 from (0,0): 2 km at 0.3 km/min ≈ 6.67 min.
        assert!((arrival.as_f64() - 2.0 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn rejects_beyond_detour_limit() {
        let f = future(&[(0.0, 0.0), (4.0, 0.0)]);
        let t = task(2.0, 5.0, 240.0); // ~6.77 km detour
        assert!(decide(&f, 6.0, 0.3, &t, Minutes::ZERO).is_none());
        assert!(decide(&f, 8.0, 0.3, &t, Minutes::ZERO).is_some());
    }

    #[test]
    fn rejects_after_deadline() {
        let f = future(&[(0.0, 0.0), (4.0, 0.0)]);
        let t = task(2.0, 0.0, 5.0); // needs ~6.7 min, deadline 5
        assert!(decide(&f, 6.0, 0.3, &t, Minutes::ZERO).is_none());
    }

    #[test]
    fn later_leg_can_be_cheaper() {
        // The second leg passes right by the task.
        let f = future(&[(0.0, 0.0), (0.0, 4.0), (6.0, 4.0)]);
        let t = task(3.0, 4.1, 480.0);
        let (d, _) = decide(&f, 6.0, 0.3, &t, Minutes::ZERO).unwrap();
        assert!(d < 0.2, "cheap second-leg detour, got {d}");
    }

    #[test]
    fn single_point_roundtrip_rule() {
        let f = future(&[(0.0, 0.0)]);
        let t = task(2.0, 0.0, 240.0);
        let (d, _) = decide(&f, 6.0, 0.3, &t, Minutes::ZERO).unwrap();
        assert!((d - 4.0).abs() < 1e-9);
        // Detour limit below the round trip → reject.
        assert!(decide(&f, 3.0, 0.3, &t, Minutes::ZERO).is_none());
    }

    #[test]
    fn empty_future_rejects() {
        let t = task(1.0, 1.0, 240.0);
        assert!(decide(&[], 6.0, 0.3, &t, Minutes::ZERO).is_none());
    }

    #[test]
    fn departure_clamped_to_now() {
        // Leg starts in the past relative to `now`; departure time is
        // clamped so arrival can't be before now.
        let f = future(&[(0.0, 0.0), (4.0, 0.0)]);
        let t = task(0.5, 0.0, 240.0);
        let (_, arrival) = decide(&f, 6.0, 0.3, &t, Minutes::new(30.0)).unwrap();
        assert!(arrival.as_f64() >= 30.0);
    }
}

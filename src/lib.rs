//! # tamp — Mobility Prediction-Aware Spatial Crowdsourcing
//!
//! A reproduction of *"Effective Task Assignment in Mobility
//! Prediction-Aware Spatial Crowdsourcing"* (Li et al., ICDE 2025) as a
//! Rust workspace. This facade crate re-exports the workspace so
//! downstream users depend on a single package:
//!
//! * [`core`] — domain model (tasks, workers, routines, geometry).
//! * [`nn`] — micro neural-network library (LSTM encoder–decoder,
//!   optimisers, the task-assignment-oriented loss of Eq. 6–7).
//! * [`sim`] — synthetic city workloads standing in for the
//!   Porto/Didi and Gowalla/Foursquare datasets.
//! * [`meta`] — game-theory-based task-adaptive meta-learning (GTMC,
//!   TAML) plus the MAML / CTML / GTTAML-GT baselines.
//! * [`assign`] — Hungarian matching, the matching-rate metric, the PPI
//!   assignment algorithm and the UB / LB / KM / GGPSO baselines.
//! * [`platform`] — the batch-mode platform simulator and the experiment
//!   drivers that regenerate every table and figure of the paper.
//! * [`obs`] — zero-dependency telemetry (spans, counters, histograms,
//!   JSONL traces) wired through the engine, training, and assignment
//!   hot paths.
//! * [`serve`] — long-running sharded service host over the batch
//!   engine: bounded submission queues with counted shedding and a
//!   cross-batch prediction cache (see `docs/serving.md`).
//!
//! See `examples/quickstart.rs` for a three-minute tour, and
//! `docs/architecture.md` for the crate map and data flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tamp_assign as assign;
pub use tamp_core as core;
pub use tamp_meta as meta;
pub use tamp_nn as nn;
pub use tamp_obs as obs;
pub use tamp_platform as platform;
pub use tamp_serve as serve;
pub use tamp_sim as sim;

/// The crate version, for experiment reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

//! The timestamped events a shard's submission queue carries, and the
//! simulated source that replays a [`Workload`] as such a stream.
//!
//! In a deployment the stream would be fed by requesters publishing
//! tasks and workers reporting locations; in this repo the same
//! interface is driven by replaying a generated test day, which is what
//! makes serve runs directly comparable (byte for byte) to the one-shot
//! `run_assignment` over the same workload.

use tamp_core::{SpatialTask, TimedPoint};
use tamp_sim::Workload;

/// One submission: either a requester publishing a task or a worker
/// reporting a location sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardEvent {
    /// A task published at its release time.
    Task(SpatialTask),
    /// A periodic location report from worker `worker` (index into the
    /// shard workload's worker list).
    Report {
        /// Index of the reporting worker.
        worker: usize,
        /// The reported location sample.
        point: TimedPoint,
    },
}

impl ShardEvent {
    /// When the event happens, minutes since the day start (a task's
    /// release time; a report's sample time).
    pub fn time(&self) -> f64 {
        match self {
            ShardEvent::Task(task) => task.release.as_f64(),
            ShardEvent::Report { point, .. } => point.time.as_f64(),
        }
    }
}

/// A time-ordered replay of one workload's test day as submission
/// events.
#[derive(Debug, Clone)]
pub struct EventStream {
    events: Vec<ShardEvent>,
    next: usize,
}

impl EventStream {
    /// Merges the workload's tasks (at their release times) and every
    /// worker's location reports (the real routine's samples) into one
    /// stream, stably sorted by time — ties keep the workload's task
    /// order and each worker's report order, so replaying the stream
    /// reconstructs exactly what the one-shot engine reads from the
    /// workload directly.
    pub fn from_workload(workload: &Workload) -> Self {
        let mut events: Vec<ShardEvent> = workload
            .tasks
            .iter()
            .copied()
            .map(ShardEvent::Task)
            .collect();
        for (wi, sw) in workload.workers.iter().enumerate() {
            events.extend(
                sw.worker
                    .real_routine
                    .points()
                    .iter()
                    .map(|&point| ShardEvent::Report { worker: wi, point }),
            );
        }
        // Vec::sort_by is stable: same-time events keep insertion order.
        events.sort_by(|a, b| a.time().partial_cmp(&b.time()).expect("finite event times"));
        Self { events, next: 0 }
    }

    /// Hands out (and consumes) every not-yet-taken event with
    /// `time < t`, preserving stream order.
    pub fn take_until(&mut self, t: f64) -> &[ShardEvent] {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].time() < t {
            self.next += 1;
        }
        &self.events[start..self.next]
    }

    /// Events not yet taken.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Total events in the stream (taken or not).
    pub fn total(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn tiny() -> Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 5).build()
    }

    #[test]
    fn stream_covers_tasks_and_reports_in_time_order() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let n_reports: usize = w
            .workers
            .iter()
            .map(|sw| sw.worker.real_routine.points().len())
            .sum();
        assert_eq!(s.total(), w.tasks.len() + n_reports);
        let all = s.take_until(f64::INFINITY).to_vec();
        assert_eq!(all.len(), s.total());
        assert_eq!(s.remaining(), 0);
        for pair in all.windows(2) {
            assert!(pair[0].time() <= pair[1].time(), "stream must be sorted");
        }
    }

    #[test]
    fn take_until_is_exclusive_and_resumes() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let cut = 60.0;
        let first: Vec<_> = s.take_until(cut).to_vec();
        assert!(first.iter().all(|e| e.time() < cut));
        let rest: Vec<_> = s.take_until(f64::INFINITY).to_vec();
        assert!(rest.iter().all(|e| e.time() >= cut));
        assert_eq!(first.len() + rest.len(), s.total());
    }

    #[test]
    fn ties_preserve_per_worker_report_order() {
        let w = tiny();
        let mut s = EventStream::from_workload(&w);
        let all = s.take_until(f64::INFINITY);
        // Per worker, the replayed reports must equal the routine
        // verbatim — stable sort may not reorder equal-time samples.
        for (wi, sw) in w.workers.iter().enumerate() {
            let replayed: Vec<TimedPoint> = all
                .iter()
                .filter_map(|e| match e {
                    ShardEvent::Report { worker, point } if *worker == wi => Some(*point),
                    _ => None,
                })
                .collect();
            assert_eq!(replayed, sw.worker.real_routine.points().to_vec());
        }
    }
}

//! Accumulates a machine-normalized performance trajectory across the
//! repo's committed measurement records, so perf regressions show up as
//! a *trend break* instead of a single noisy number.
//!
//! Each invocation reads the headline numbers out of
//! `results/serve_latency.json`, `results/train_speed.json`,
//! `results/ppi_index.json`, and `results/obs_overhead.json`, measures
//! a calibration constant (ns per iteration of a fixed integer spin
//! loop, median of 5), and appends one entry to
//! `results/bench_trajectory.json`:
//!
//! ```json
//! { "schema": 1,
//!   "entries": [ { "seq": 1, "calibration_ns_per_op": 0.32,
//!                  "metrics": { "serve.p99_ms.max_rate.shed": 1.94, ... } } ] }
//! ```
//!
//! Time-valued metrics are compared across entries after dividing by
//! each entry's calibration constant, which cancels raw machine speed;
//! ratio- and percent-valued metrics compare directly.
//!
//! `--check` (the ci.sh gate) re-reads the current results files and
//! verifies them against the trajectory's last entry — and every
//! consecutive entry pair against each other — at tolerance
//! `TAMP_TRAJ_TOL` (default 2.5×). Exits nonzero on a regression.
//!
//! Environment: `TAMP_OUT` (default `results/`), `TAMP_TRAJ_TOL`.

use std::time::Instant;
use tamp_bench::out_dir;

/// How a metric is compared between two trajectory points.
#[derive(Clone, Copy)]
enum Kind {
    /// Wall-clock value: lower is better, normalized by calibration.
    Time,
    /// Speedup-style ratio: higher is better, compared directly.
    Ratio,
    /// Bounded percentage: lower is better, compared directly.
    Pct,
}

struct Metric {
    name: &'static str,
    value: f64,
}

fn read_json(name: &str) -> Option<serde_json::Value> {
    let path = out_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| eprintln!("note: {}: {e} — its metrics are skipped", path.display()))
        .ok()?;
    serde_json::from_str(&text)
        .map_err(|e| eprintln!("note: {}: {e} — its metrics are skipped", path.display()))
        .ok()
}

/// Pulls the headline numbers out of the committed measurement records.
/// Missing files drop their metrics with a note — the trajectory tracks
/// whatever is present, it never fabricates.
fn gather_metrics() -> Vec<Metric> {
    let mut out = Vec::new();
    if let Some(doc) = read_json("serve_latency.json") {
        let rows = doc
            .get("policies")
            .or_else(|| doc.get("rates"))
            .and_then(|v| v.as_array())
            .cloned()
            .unwrap_or_default();
        let max_rate = rows
            .iter()
            .filter_map(|r| r.get("rate").and_then(serde_json::Value::as_u64))
            .max();
        if let Some(rate) = max_rate {
            for row in rows.iter().filter(|r| {
                r.get("rate").and_then(serde_json::Value::as_u64) == Some(rate)
                    && r.get("policy").and_then(serde_json::Value::as_str) == Some("shed")
            }) {
                for (field, name) in [
                    ("batch_p50_ms", "serve.p50_ms.max_rate.shed"),
                    ("batch_p99_ms", "serve.p99_ms.max_rate.shed"),
                ] {
                    if let Some(v) = row.get(field).and_then(serde_json::Value::as_f64) {
                        out.push(Metric { name, value: v });
                    }
                }
                if let Some(v) = row
                    .get("cache_hit_rate")
                    .and_then(serde_json::Value::as_f64)
                {
                    out.push(Metric {
                        name: "serve.cache_hit_rate.max_rate.shed",
                        value: v,
                    });
                }
            }
        }
    }
    if let Some(doc) = read_json("train_speed.json") {
        if let Some(v) = doc
            .get("median_seconds")
            .and_then(|m| m.get("fused_serial"))
            .and_then(serde_json::Value::as_f64)
        {
            out.push(Metric {
                name: "train.fused_serial_s",
                value: v,
            });
        }
        if let Some(v) = doc
            .get("speedup")
            .and_then(|m| m.get("end_to_end"))
            .and_then(serde_json::Value::as_f64)
        {
            out.push(Metric {
                name: "train.speedup.end_to_end",
                value: v,
            });
        }
    }
    if let Some(doc) = read_json("ppi_index.json") {
        let rows = doc
            .get("rows")
            .and_then(|v| v.as_array())
            .cloned()
            .unwrap_or_default();
        let biggest = rows
            .iter()
            .filter(|r| r.get("algo").and_then(serde_json::Value::as_str) == Some("ppi"))
            .max_by_key(|r| {
                r.get("n_tasks")
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0)
            });
        if let Some(row) = biggest {
            if let Some(v) = row.get("indexed_ms").and_then(serde_json::Value::as_f64) {
                out.push(Metric {
                    name: "ppi.indexed_ms.largest",
                    value: v,
                });
            }
            if let Some(v) = row.get("speedup").and_then(serde_json::Value::as_f64) {
                out.push(Metric {
                    name: "ppi.index_speedup.largest",
                    value: v,
                });
            }
        }
    }
    if let Some(doc) = read_json("infer_batch.json") {
        let rows = doc
            .get("rows")
            .and_then(|v| v.as_array())
            .cloned()
            .unwrap_or_default();
        let biggest = rows.iter().max_by_key(|r| {
            r.get("n_workers")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0)
        });
        if let Some(row) = biggest {
            let batch64 = row
                .get("batches")
                .and_then(|v| v.as_array())
                .into_iter()
                .flatten()
                .find(|b| b.get("batch").and_then(serde_json::Value::as_u64) == Some(64));
            if let Some(v) = batch64
                .and_then(|b| b.get("scalar_speedup"))
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    name: "nn.rollout.speedup.batch64",
                    value: v,
                });
            }
            if let Some(v) = batch64
                .and_then(|b| b.get("batched_speedup"))
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    name: "nn.rollout.batched_speedup.batch64",
                    value: v,
                });
            }
            if let Some(v) = row
                .get("mem_ratio_dense_over_store")
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    name: "nn.rollout.mem_ratio.largest",
                    value: v,
                });
            }
        }
    }
    if let Some(doc) = read_json("obs_overhead.json") {
        let rows = doc
            .get("rows")
            .and_then(|v| v.as_array())
            .cloned()
            .unwrap_or_default();
        for row in &rows {
            let path = row
                .get("path")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("engine");
            if let Some(v) = row
                .get("overhead_bound_pct")
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    name: match path {
                        "serve" => "obs.overhead_bound_pct.serve",
                        _ => "obs.overhead_bound_pct.engine",
                    },
                    value: v,
                });
            }
        }
    }
    out
}

/// ns per iteration of a fixed xorshift spin loop, median of 5 runs —
/// a dimensionless stand-in for single-core speed that needs no
/// dependencies and finishes in well under a second.
fn calibrate() -> f64 {
    const ITERS: u64 = 20_000_000;
    let mut samples: Vec<f64> = (0..5)
        .map(|rep| {
            let mut x = 0x9E3779B97F4A7C15u64 ^ rep;
            let t0 = Instant::now();
            for _ in 0..ITERS {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / ITERS as f64;
            // The fold below keeps the loop observable without I/O.
            std::hint::black_box(x);
            ns
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn metric_kind(name: &str) -> Kind {
    // Historical entries only store values, so the name must encode
    // enough to re-derive the comparison direction.
    if name.contains("_ms") || name.ends_with("_s") {
        Kind::Time
    } else if name.contains("pct") {
        Kind::Pct
    } else {
        Kind::Ratio
    }
}

/// One trajectory point: calibration constant + flat metric map.
struct Entry {
    seq: u64,
    calibration_ns_per_op: f64,
    metrics: Vec<(String, f64)>,
}

fn load_trajectory(path: &std::path::Path) -> Result<Vec<Entry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{}: no entries array", path.display()))?;
    entries
        .iter()
        .map(|e| {
            let seq = e
                .get("seq")
                .and_then(serde_json::Value::as_u64)
                .ok_or("entry without seq")?;
            let calibration_ns_per_op = e
                .get("calibration_ns_per_op")
                .and_then(serde_json::Value::as_f64)
                .ok_or("entry without calibration_ns_per_op")?;
            let metrics = e
                .get("metrics")
                .and_then(|v| v.as_object())
                .ok_or("entry without metrics")?
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect();
            Ok(Entry {
                seq,
                calibration_ns_per_op,
                metrics,
            })
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn save_trajectory(path: &std::path::Path, entries: &[Entry]) {
    let json_entries: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            let metrics: serde_json::Map<String, serde_json::Value> = e
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), serde_json::json!(v)))
                .collect();
            serde_json::json!({
                "seq": e.seq,
                "calibration_ns_per_op": e.calibration_ns_per_op,
                "metrics": metrics,
            })
        })
        .collect();
    let doc = serde_json::json!({ "schema": 1, "entries": json_entries });
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .expect("write trajectory");
}

/// Compares `cur` against `base` at tolerance; returns a violation
/// description when `cur` regressed. Time metrics normalize by each
/// side's calibration; ratio/pct metrics compare raw.
fn compare(base: &Entry, cur: &Entry, tol: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for (name, cur_v) in &cur.metrics {
        let Some((_, base_v)) = base.metrics.iter().find(|(n, _)| n == name) else {
            continue; // new metric: nothing to regress against
        };
        let kind = metric_kind(name);
        let (b, c) = match kind {
            Kind::Time => (
                base_v / base.calibration_ns_per_op,
                cur_v / cur.calibration_ns_per_op,
            ),
            _ => (*base_v, *cur_v),
        };
        let regressed = match kind {
            Kind::Time | Kind::Pct => c > b * tol && c - b > 1e-9,
            Kind::Ratio => c < b / tol && b - c > 1e-9,
        };
        if regressed {
            bad.push(format!(
                "{name}: entry {} -> {}: {b:.4} -> {c:.4} (normalized, tolerance {tol}x)",
                base.seq, cur.seq
            ));
        }
    }
    bad
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let tol = std::env::var("TAMP_TRAJ_TOL")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| *t >= 1.0)
        .unwrap_or(2.5);
    let path = out_dir().join("bench_trajectory.json");
    let entries = match load_trajectory(&path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let metrics = gather_metrics();
    if metrics.is_empty() {
        eprintln!("error: no results files to read — run the diag bins first");
        std::process::exit(1);
    }
    let cal = calibrate();
    let current = Entry {
        seq: entries.last().map_or(1, |e| e.seq + 1),
        calibration_ns_per_op: cal,
        metrics: metrics
            .iter()
            .map(|m| (m.name.to_string(), m.value))
            .collect(),
    };
    println!(
        "calibration: {cal:.3} ns/op; {} metric(s) from results/",
        current.metrics.len()
    );
    for m in &metrics {
        println!("  {:<36} {:>12.4}", m.name, m.value);
    }

    if check {
        let mut bad = Vec::new();
        for pair in entries.windows(2) {
            bad.extend(compare(&pair[0], &pair[1], tol));
        }
        match entries.last() {
            Some(last) => {
                // The current files were produced alongside the last
                // committed entry, so they share its calibration.
                let cur = Entry {
                    calibration_ns_per_op: last.calibration_ns_per_op,
                    ..current
                };
                bad.extend(compare(last, &cur, tol));
            }
            None => {
                eprintln!("error: --check needs a committed trajectory baseline");
                std::process::exit(1);
            }
        }
        if bad.is_empty() {
            println!(
                "trajectory OK: {} entr{} within {tol}x",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
        } else {
            for b in &bad {
                eprintln!("REGRESSION: {b}");
            }
            std::process::exit(1);
        }
    } else {
        let mut entries = entries;
        let seq = current.seq;
        entries.push(current);
        save_trajectory(&path, &entries);
        println!("appended entry {seq} to {}", path.display());
    }
}

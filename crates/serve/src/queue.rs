//! Bounded submission queues with explicit load shedding.
//!
//! Every shard owns one [`BoundedQueue`] that submissions flow through.
//! The bound is the backpressure mechanism: when a window's event burst
//! exceeds the capacity, [`BoundedQueue::try_push`] refuses the event
//! and hands it back, and the *caller* decides what to do with it —
//! shed it, degrade, or retry later, per the shard's
//! [`crate::OverloadPolicy`], always counted (`serve.shed` /
//! `serve.overload.*`, `shed_*` / `degraded_*` in the
//! [`crate::ShardReport`]). Nothing is ever dropped silently: the
//! accounting invariant `offered == submitted + shed + degraded` is
//! enforced by the test suite.
//!
//! A closed queue ([`BoundedQueue::close`], used on graceful shutdown)
//! refuses every further push; draining continues normally.

use std::collections::VecDeque;
use std::sync::Mutex;

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A FIFO queue that refuses pushes beyond a fixed capacity.
///
/// Interior mutability (a mutex, uncontended in practice: one feeder,
/// one drainer, never concurrently) keeps the submission side `&self`,
/// matching how a network front-end would hand events to a shard it
/// does not own exclusively.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue accepting at most `capacity` queued items.
    /// A zero capacity is clamped to 1 (a queue that can never accept
    /// anything would shed every event, which is never what a
    /// configuration means).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it to the caller when the queue is
    /// full or closed — the caller must account for the refusal
    /// (shed/degrade/retry per its overload policy).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        if q.closed || q.items.len() >= self.capacity {
            return Err(item);
        }
        q.items.push_back(item);
        Ok(())
    }

    /// Pops the front item if `pred` accepts it (used to drain only the
    /// events belonging to the batch window being stepped). Draining
    /// works on a closed queue.
    pub fn pop_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        if q.items.front().is_some_and(pred) {
            q.items.pop_front()
        } else {
            None
        }
    }

    /// Removes and returns the most recently queued item matching
    /// `pred`, scanning from the back (the `DegradeToFallback` policy
    /// evicts the newest queued report to make room for a task).
    pub fn evict_last_matching(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        let idx = q.items.iter().rposition(pred)?;
        q.items.remove(idx)
    }

    /// Stops accepting pushes permanently (graceful shutdown). Queued
    /// items remain drainable.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
    }

    /// Whether [`Self::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue mutex poisoned").closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T: Clone> BoundedQueue<T> {
    /// The queued items in order, cloned (snapshotting).
    pub fn to_vec(&self) -> Vec<T> {
        self.inner
            .lock()
            .expect("queue mutex poisoned")
            .items
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_if(|_| true), Some(0));
        assert_eq!(q.pop_if(|_| true), Some(1));
        assert_eq!(q.pop_if(|_| true), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3), "overflow must return the event");
        assert_eq!(q.len(), 2, "refused push leaves the queue unchanged");
        q.pop_if(|_| true);
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_if_respects_the_predicate() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        assert_eq!(q.pop_if(|v| *v < 10), None, "predicate refused the front");
        assert_eq!(q.len(), 1, "refused pop leaves the item queued");
        assert_eq!(q.pop_if(|v| *v == 10), Some(10));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn capacity_one_queue_is_usable_fifo() {
        // The smallest legal queue still moves every event, one at a
        // time, and refusals are exact.
        let q = BoundedQueue::new(1);
        let mut refused = 0usize;
        let mut delivered = Vec::new();
        for i in 0..10 {
            if q.try_push(i).is_err() {
                refused += 1;
            }
            if i % 2 == 1 {
                // Drain between bursts.
                while let Some(v) = q.pop_if(|_| true) {
                    delivered.push(v);
                }
            }
        }
        while let Some(v) = q.pop_if(|_| true) {
            delivered.push(v);
        }
        assert_eq!(delivered.len() + refused, 10, "every push is accounted");
        assert!(refused > 0, "a 1-slot queue must refuse within a burst");
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, delivered, "FIFO order preserved");
    }

    #[test]
    fn feed_after_close_is_refused() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(2), Err(2), "closed queue refuses pushes");
        assert_eq!(q.pop_if(|_| true), Some(1), "draining still works");
        assert_eq!(q.try_push(3), Err(3), "still closed after draining");
    }

    #[test]
    fn repeated_fill_and_drain_sheds_exactly() {
        // Exact shed accounting across multiple fill/drain cycles within
        // one "window": offered == delivered + refused, cycle by cycle.
        let q = BoundedQueue::new(3);
        let (mut offered, mut delivered, mut refused) = (0usize, 0usize, 0usize);
        for cycle in 0..5 {
            for i in 0..7 {
                offered += 1;
                if q.try_push(cycle * 10 + i).is_err() {
                    refused += 1;
                }
            }
            while q.pop_if(|_| true).is_some() {
                delivered += 1;
            }
            assert!(q.is_empty());
        }
        assert_eq!(offered, 35);
        assert_eq!(refused, 5 * 4, "each 7-burst over capacity 3 refuses 4");
        assert_eq!(delivered + refused, offered);
    }

    #[test]
    fn evict_last_matching_removes_the_newest_match() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.evict_last_matching(|v| v % 2 == 0), Some(4));
        assert_eq!(q.evict_last_matching(|v| *v > 100), None);
        assert_eq!(q.len(), 5);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop_if(|_| true)).collect();
        assert_eq!(rest, vec![0, 1, 2, 3, 5], "other items keep their order");
    }

    #[test]
    fn to_vec_snapshots_in_order() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.to_vec(), vec!["a", "b"]);
        assert_eq!(q.len(), 2, "snapshot does not consume");
    }
}

//! Event sinks: where telemetry goes.
//!
//! The [`Recorder`] trait is the single extension point; the engine and
//! training code never know which sink is behind it. Three are provided:
//!
//! * [`NullRecorder`] — discards everything; the default in production
//!   paths, with near-zero overhead.
//! * [`JsonlRecorder`] — buffered structured events, one JSON object per
//!   line (the on-disk trace format `trace_report` and `tamp-cli
//!   trace-validate` consume).
//! * [`MemoryRecorder`] — keeps events in memory; used by tests and the
//!   reconciliation checks.

use crate::event::Event;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// An event sink. Implementations must be cheap to call and must not
/// panic on I/O trouble (telemetry never takes down the run it watches).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory (tests, reconciliation checks).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty in-memory recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("obs lock").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("obs lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().expect("obs lock").push(event.clone());
    }
}

/// Writes one JSON object per event to a buffered byte sink.
///
/// I/O errors after construction are swallowed (and remembered): a full
/// disk must degrade the trace, not the run.
pub struct JsonlRecorder {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    failed: std::sync::atomic::AtomicBool,
}

impl JsonlRecorder {
    /// Records into any byte sink.
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(sink)),
            failed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Creates (truncates) `path` and records into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// True if any write or flush failed since construction.
    pub fn poisoned(&self) -> bool {
        self.failed.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("obs lock");
        let line = event.to_json_line();
        if writeln!(out, "{line}").is_err() {
            self.failed
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.out.lock().expect("obs lock").flush().is_err() {
            self.failed
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        Recorder::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn memory_recorder_keeps_order() {
        let r = MemoryRecorder::new();
        r.record(&Event::count("a", 1, None));
        r.record(&Event::gauge("b", 2.0, Some(1)));
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].name, "b");
    }

    #[test]
    fn jsonl_recorder_emits_parseable_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let r = JsonlRecorder::new(Box::new(Shared(buf.clone())));
        r.record(&Event::count("x", 3, None));
        r.record(&Event::gauge("y", 0.5, Some(7)));
        Recorder::flush(&r);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::from_json_line(line).unwrap();
        }
        assert!(!r.poisoned());
    }

    #[test]
    fn jsonl_recorder_survives_sink_failure() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let r = JsonlRecorder::new(Box::new(Failing));
        for _ in 0..10_000 {
            r.record(&Event::count("x", 1, None)); // must not panic
        }
        Recorder::flush(&r);
        assert!(r.poisoned());
    }
}

//! A day in the life of one courier.
//!
//! Zooms into a single worker: shows their latent archetype, how the
//! trained model's rollout tracks their real movements through the day,
//! and how the acceptance model decides on concrete nearby tasks.
//!
//! ```sh
//! cargo run --release --example courier_day
//! ```

use tamp::core::{Minutes, Point};
use tamp::platform::acceptance::decide;
use tamp::platform::{train_predictors, TrainingConfig};
use tamp::sim::{ArchetypeKind, Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 7).build();
    let predictors = train_predictors(
        &workload,
        &TrainingConfig {
            seed: 7,
            ..TrainingConfig::default()
        },
    );

    // Pick a courier (fall back to worker 0 if the draw has none).
    let (wi, courier) = workload
        .workers
        .iter()
        .enumerate()
        .find(|(_, sw)| sw.persona.kind == ArchetypeKind::CourierLoop)
        .unwrap_or((0, &workload.workers[0]));
    println!(
        "worker {} — archetype {:?}, detour limit {} km, {} anchors, MR {:.2}",
        courier.worker.id,
        courier.persona.kind,
        courier.worker.detour_limit_km,
        courier.persona.anchors.len(),
        predictors.mrs[wi],
    );

    // Walk the day in 1-hour strides: observed position vs model rollout.
    println!("\n time | real position      | predicted next unit | error (km)");
    for hour in 1..=4 {
        let now = Minutes::new(hour as f64 * 60.0);
        let real_now = courier.worker.location_at(now).expect("on duty");
        let observed: Vec<[f64; 2]> = courier
            .worker
            .real_routine
            .window(Minutes::ZERO, now)
            .iter()
            .rev()
            .take(5)
            .rev()
            .map(|p| {
                let (x, y) = workload.grid.normalize(p.loc);
                [x, y]
            })
            .collect();
        if observed.is_empty() {
            continue;
        }
        let pred = predictors.models[wi].predict(&observed, 1)[0];
        let pred_km = workload.grid.denormalize(pred[0], pred[1]);
        let real_next = courier
            .worker
            .real_routine
            .position_at(Minutes::new(now.as_f64() + 10.0))
            .expect("on duty");
        println!(
            " {:>4.0} | ({:5.2}, {:5.2}) km | ({:5.2}, {:5.2}) km   | {:.2}",
            now.as_f64(),
            real_now.x,
            real_now.y,
            pred_km.x,
            pred_km.y,
            pred_km.dist(real_next),
        );
    }

    // Offer three hypothetical check-in tasks at increasing distance from
    // the courier's 2-hour position and show the acceptance decision.
    let now = Minutes::new(120.0);
    let here = courier.worker.location_at(now).expect("on duty");
    let future = courier
        .worker
        .real_routine
        .window(now, Minutes::new(f64::MAX))
        .to_vec();
    println!(
        "\n acceptance decisions at t = {:.0} min (position {:.2}, {:.2}):",
        now.as_f64(),
        here.x,
        here.y
    );
    for (label, offset) in [
        ("next door", 0.3),
        ("across town", 3.0),
        ("far corner", 9.0),
    ] {
        let task = tamp::core::SpatialTask::new(
            tamp::core::TaskId(900),
            workload
                .grid
                .clamp(Point::new(here.x + offset, here.y + offset / 2.0)),
            now,
            Minutes::new(now.as_f64() + 40.0),
        );
        match decide(
            &future,
            courier.worker.detour_limit_km,
            courier.worker.speed_km_per_min,
            &task,
            now,
        ) {
            Some((detour, arrival)) => println!(
                "  {label:<12} → ACCEPT (detour {detour:.2} km, arrives at {:.0} min)",
                arrival.as_f64()
            ),
            None => println!("  {label:<12} → REJECT (violates detour or deadline)"),
        }
    }
}

//! Complete experiment workloads.
//!
//! [`WorkloadConfig::build`] assembles the city (grid + POIs), the worker
//! population (personas → multi-day histories → a held-out test day), and
//! the task streams (assignment tasks for the test day plus the larger
//! *historical* set that feeds the task-oriented loss of Eq. 7).
//!
//! Two presets mirror the paper's Table II:
//!
//! * [`WorkloadKind::PortoDidi`] — taxi-like workers (more roamers and
//!   couriers), task hotspots *not* aligned with worker anchors.
//! * [`WorkloadKind::GowallaFoursquare`] — check-in-like workers (more
//!   commuters/localized), task hotspots aligned with worker anchors,
//!   which is why the paper sees smaller worker-cost gaps there.

use crate::archetype::{ArchetypeKind, WorkerPersona};
use crate::poi_gen::{generate_pois, poi_sequence};
use crate::routine_gen::{generate_days, DayParams};
use crate::task_gen::{
    generate_historical_locations, generate_tasks, workload1_hotspots, Hotspot, TaskGenConfig,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use tamp_core::rng::{rng_for, streams};
use tamp_core::{Grid, Minutes, Poi, Point, Routine, SpatialTask, Worker, WorkerId};

/// Sizing knobs. The paper-scale preset matches Table II/III; the default
/// is laptop-scale and regenerates every experiment in minutes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Scale {
    /// Number of crowd workers.
    pub n_workers: usize,
    /// Training days per worker (the paper uses Oct 20–28 ≈ 9 days).
    pub train_days: usize,
    /// 10-minute samples per day (48 = an 8-hour active window).
    pub units_per_day: usize,
    /// Assignment tasks on the test day.
    pub n_tasks: usize,
    /// Historical task locations for the loss density map.
    pub n_historical_tasks: usize,
}

impl Scale {
    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        Self {
            n_workers: 8,
            train_days: 3,
            units_per_day: 24,
            n_tasks: 40,
            n_historical_tasks: 400,
        }
    }

    /// Default experiment scale (laptop-friendly). The task:worker ratio
    /// (~25:1 per day) keeps the platform resource-constrained, as in the
    /// paper's 1K–5K tasks on 442 workers with short validity windows.
    pub fn small() -> Self {
        Self {
            n_workers: 30,
            train_days: 6,
            units_per_day: 48,
            n_tasks: 2400,
            n_historical_tasks: 4000,
        }
    }

    /// The paper's workload-1 scale (Porto: 442 taxis, 9 training days).
    pub fn paper_workload1() -> Self {
        Self {
            n_workers: 442,
            train_days: 9,
            units_per_day: 48,
            n_tasks: 3000,
            n_historical_tasks: 50_000,
        }
    }
}

/// Which dataset pair the workload imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Workload 1: Porto taxis + Didi orders (unaligned task hotspots).
    PortoDidi,
    /// Workload 2: Gowalla check-ins + Foursquare venues (aligned).
    GowallaFoursquare,
}

/// Full workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Which dataset pair to imitate.
    pub kind: WorkloadKind,
    /// City discretisation.
    pub grid: Grid,
    /// Sizing.
    pub scale: Scale,
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Worker detour limit `d` in km (swept in Fig. 6/9).
    pub detour_limit_km: f64,
    /// Worker speed, km/min.
    pub speed_km_per_min: f64,
    /// Task valid time `[lo, hi]` in time units (swept in Fig. 8/11).
    pub valid_time_units: (f64, f64),
    /// Fraction of workers that are cold-start newcomers (1 training day).
    pub new_worker_fraction: f64,
    /// Number of POIs in the city.
    pub n_pois: usize,
}

impl WorkloadConfig {
    /// The paper's default parameter column (bold values in Table III).
    pub fn new(kind: WorkloadKind, scale: Scale, seed: u64) -> Self {
        Self {
            kind,
            grid: Grid::PAPER,
            scale,
            seed,
            detour_limit_km: 6.0,
            speed_km_per_min: 0.3,
            valid_time_units: (3.0, 4.0),
            new_worker_fraction: 0.15,
            n_pois: 400,
        }
    }

    /// Archetype mixture weights for this workload kind.
    fn archetype_weights(&self) -> [f64; 4] {
        match self.kind {
            // Taxi-like: movement-dominated (courier loops and roamers);
            // dwell-heavy archetypes are rare. This is what separates the
            // current-location LB from prediction-aware assignment.
            WorkloadKind::PortoDidi => [0.1, 0.6, 0.1, 0.2],
            // Check-in-like: routine-driven commuters and locals.
            WorkloadKind::GowallaFoursquare => [0.4, 0.15, 0.1, 0.35],
        }
    }

    /// Builds the full workload.
    pub fn build(&self) -> Workload {
        assert!(self.scale.n_workers > 0, "need workers");
        let grid = self.grid;
        let mut poi_rng = rng_for(self.seed, streams::POIS);
        let pois = generate_pois(&grid, self.n_pois, &mut poi_rng);

        // ---- workers ----
        let weights = self.archetype_weights();
        let total_w: f64 = weights.iter().sum();
        let day = DayParams {
            units: self.scale.units_per_day,
            speed_km_per_unit: self.speed_km_per_min * tamp_core::TIME_UNIT_MINUTES,
            day_start: Minutes::ZERO,
        };
        let mut workers = Vec::with_capacity(self.scale.n_workers);
        let mut anchor_pool = Vec::new();
        for i in 0..self.scale.n_workers {
            let mut rng = rng_for(self.seed, streams::ROUTINES + 1000 + i as u64);
            // Pick archetype by weight.
            let mut pick = rng.gen_range(0.0..total_w);
            let mut kind = ArchetypeKind::ALL[0];
            for (k, w) in ArchetypeKind::ALL.iter().zip(weights) {
                if pick < w {
                    kind = *k;
                    break;
                }
                pick -= w;
            }
            let persona = WorkerPersona::sample(kind, &grid, &mut rng);
            anchor_pool.extend(persona.anchors.iter().copied());

            let is_new =
                (i as f64 + 0.5) / self.scale.n_workers as f64 > 1.0 - self.new_worker_fraction;
            let train_days = if is_new { 1 } else { self.scale.train_days };
            // Train days + one held-out test day.
            let mut days = generate_days(&persona, &grid, &day, train_days + 1, &mut rng);
            let test_day_abs = days.pop().expect("at least one day");
            // Re-base the test day to t=0 (it is "today" for the engine).
            let offset = test_day_abs.start_time().expect("non-empty").as_f64();
            let test_day = Routine::from_points(
                test_day_abs
                    .points()
                    .iter()
                    .map(|p| {
                        tamp_core::TimedPoint::new(p.loc, Minutes::new(p.time.as_f64() - offset))
                    })
                    .collect(),
            );

            let history_all = Routine::from_points(
                days.iter()
                    .flat_map(|d| d.points().iter().copied())
                    .collect(),
            );
            let core = Worker {
                id: WorkerId(i as u64),
                history: history_all,
                real_routine: test_day,
                detour_limit_km: self.detour_limit_km,
                speed_km_per_min: self.speed_km_per_min,
                is_new,
            };
            let poi_seq = poi_sequence(&pois, &persona.anchors);
            workers.push(SimWorker {
                worker: core,
                history_days: days,
                persona,
                poi_seq,
            });
        }

        // ---- tasks ----
        let hotspots = match self.kind {
            WorkloadKind::PortoDidi => workload1_hotspots(&grid),
            WorkloadKind::GowallaFoursquare => aligned_hotspots(&anchor_pool, self.seed),
        };
        let horizon = Minutes::new(self.scale.units_per_day as f64 * tamp_core::TIME_UNIT_MINUTES);
        let task_cfg = TaskGenConfig {
            hotspots,
            horizon,
            valid_time_units: self.valid_time_units,
        };
        let mut task_rng = rng_for(self.seed, streams::TASKS);
        let tasks = generate_tasks(&task_cfg, &grid, self.scale.n_tasks, 0, &mut task_rng);
        let historical = generate_historical_locations(
            &task_cfg,
            &grid,
            self.scale.n_historical_tasks,
            &mut task_rng,
        );

        Workload {
            grid,
            workers,
            pois,
            tasks,
            historical_task_locs: historical,
            horizon,
        }
    }
}

/// Hotspots centred on a sample of worker anchors (workload 2's aligned
/// distribution).
fn aligned_hotspots(anchor_pool: &[Point], seed: u64) -> Vec<Hotspot> {
    assert!(!anchor_pool.is_empty(), "anchor pool empty");
    let mut rng = rng_for(seed, streams::TASKS + 77);
    let k = 6.min(anchor_pool.len());
    (0..k)
        .map(|_| Hotspot {
            center: anchor_pool[rng.gen_range(0..anchor_pool.len())],
            sigma_km: 1.2,
            weight: 1.0,
        })
        .collect()
}

/// A simulated worker: the platform-facing [`Worker`] plus the generation
/// ground truth used by learning and evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimWorker {
    /// The platform-facing worker (history + hidden real routine).
    pub worker: Worker,
    /// Per-day training routines (training pairs never cross days).
    pub history_days: Vec<Routine>,
    /// The latent persona that generated the routines.
    pub persona: WorkerPersona,
    /// POI sequence for the spatial-feature similarity (Eq. 1).
    pub poi_seq: Vec<Poi>,
}

/// A complete workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// City discretisation.
    pub grid: Grid,
    /// Worker population.
    pub workers: Vec<SimWorker>,
    /// City POIs.
    pub pois: Vec<Poi>,
    /// Assignment tasks for the test day, sorted by release.
    pub tasks: Vec<SpatialTask>,
    /// Historical task locations (for Eq. 7's density map).
    pub historical_task_locs: Vec<Point>,
    /// End of the test-day horizon.
    pub horizon: Minutes,
}

impl Workload {
    /// Serialises the workload to pretty JSON at `path` (creating parent
    /// directories), so an exact experiment input can be shared or
    /// archived independently of the generator version.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a workload previously written by [`Workload::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: WorkloadKind) -> Workload {
        WorkloadConfig::new(kind, Scale::tiny(), 42).build()
    }

    #[test]
    fn build_produces_complete_population() {
        let w = tiny(WorkloadKind::PortoDidi);
        assert_eq!(w.workers.len(), 8);
        assert_eq!(w.tasks.len(), 40);
        assert_eq!(w.historical_task_locs.len(), 400);
        assert!(!w.pois.is_empty());
        for sw in &w.workers {
            assert!(!sw.worker.real_routine.is_empty());
            assert!(!sw.worker.history.is_empty());
            assert!(!sw.history_days.is_empty());
            assert!(!sw.poi_seq.is_empty());
        }
    }

    #[test]
    fn test_day_rebased_to_zero() {
        let w = tiny(WorkloadKind::PortoDidi);
        for sw in &w.workers {
            assert_eq!(sw.worker.real_routine.start_time().unwrap().as_f64(), 0.0);
            let end = sw.worker.real_routine.end_time().unwrap().as_f64();
            assert!(end < w.horizon.as_f64());
        }
    }

    #[test]
    fn new_workers_have_single_training_day() {
        let cfg = WorkloadConfig {
            new_worker_fraction: 0.25,
            ..WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 7)
        };
        let w = cfg.build();
        let new: Vec<_> = w.workers.iter().filter(|sw| sw.worker.is_new).collect();
        assert_eq!(new.len(), 2, "25% of 8 workers");
        for sw in new {
            assert_eq!(sw.history_days.len(), 1);
        }
        for sw in w.workers.iter().filter(|sw| !sw.worker.is_new) {
            assert_eq!(sw.history_days.len(), 3);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = tiny(WorkloadKind::PortoDidi);
        let b = tiny(WorkloadKind::PortoDidi);
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.tasks[0].location, b.tasks[0].location);
        assert_eq!(
            a.workers[0].worker.real_routine,
            b.workers[0].worker.real_routine
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny(WorkloadKind::PortoDidi);
        let b = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 43).build();
        assert_ne!(a.tasks[0].location, b.tasks[0].location);
    }

    #[test]
    fn workload2_tasks_sit_nearer_worker_anchors() {
        // The aligned mixture must place tasks closer to worker anchors
        // than the unaligned one (the property behind Fig. 9's smaller
        // worker-cost gaps).
        let mean_anchor_dist = |w: &Workload| {
            let anchors: Vec<Point> = w
                .workers
                .iter()
                .flat_map(|sw| sw.persona.anchors.iter().copied())
                .collect();
            w.tasks
                .iter()
                .map(|t| {
                    anchors
                        .iter()
                        .map(|a| a.dist(t.location))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / w.tasks.len() as f64
        };
        // A mid-size population so the statistic is stable.
        let scale = Scale {
            n_workers: 24,
            train_days: 2,
            units_per_day: 16,
            n_tasks: 120,
            n_historical_tasks: 100,
        };
        let w1 = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, 42).build();
        let w2 = WorkloadConfig::new(WorkloadKind::GowallaFoursquare, scale, 42).build();
        assert!(
            mean_anchor_dist(&w2) < mean_anchor_dist(&w1),
            "aligned workload should put tasks nearer anchors: {} vs {}",
            mean_anchor_dist(&w2),
            mean_anchor_dist(&w1)
        );
    }

    #[test]
    fn archetype_mix_matches_kind() {
        let big = WorkloadConfig::new(WorkloadKind::GowallaFoursquare, Scale::small(), 11).build();
        let commuters = big
            .workers
            .iter()
            .filter(|sw| sw.persona.kind == ArchetypeKind::Commuter)
            .count();
        let roamers = big
            .workers
            .iter()
            .filter(|sw| sw.persona.kind == ArchetypeKind::Roamer)
            .count();
        assert!(
            commuters > roamers,
            "check-in workload is commuter-heavy: {commuters} vs {roamers}"
        );
    }
}
#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn workload_json_round_trip() {
        let w = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 5).build();
        let path = std::env::temp_dir().join("tamp_workload_test/w.json");
        w.save_json(&path).unwrap();
        let back = Workload::load_json(&path).unwrap();
        assert_eq!(back.workers.len(), w.workers.len());
        assert_eq!(back.tasks.len(), w.tasks.len());
        assert!(back.tasks[0].location.dist(w.tasks[0].location) < 1e-9);
        // Float round-trips can differ in the last ulp; compare pointwise
        // with tolerance.
        let a = back.workers[3].worker.real_routine.points();
        let b = w.workers[3].worker.real_routine.points();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(x.loc.dist(y.loc) < 1e-9);
            assert!((x.time.as_f64() - y.time.as_f64()).abs() < 1e-9);
        }
        assert_eq!(back.workers[3].persona.kind, w.workers[3].persona.kind);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = Workload::load_json(std::path::Path::new("/nonexistent/tamp.json"));
        assert!(err.is_err());
    }
}

//! Assignment plans (Definition 4).
//!
//! An assignment `M` pairs tasks with workers such that every task and
//! every worker appears at most once. After workers report back, the
//! accepted sub-plan `M'` carries the real detour cost `d_c` per pair.
//! The TAMP objectives (Definition 5) are all functions of `M` and `M'`:
//! maximise `|M'|`, minimise `(|M| − |M'|)/|M|`, minimise mean `d_c`.

use crate::task::TaskId;
use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One proposed pair `(τ, w)` of an assignment plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssignmentPair {
    /// The assigned task.
    pub task: TaskId,
    /// The worker it was assigned to.
    pub worker: WorkerId,
    /// The score the matcher used for this edge (higher = preferred);
    /// informational only.
    pub score: f64,
}

/// An assignment plan `M`: a set of `(τ, w)` pairs in which each task and
/// each worker appears at most once.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Assignment {
    pairs: Vec<AssignmentPair>,
}

impl Assignment {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a plan from pairs, panicking if any task or worker repeats
    /// (an invalid plan per Definition 4).
    pub fn from_pairs(pairs: Vec<AssignmentPair>) -> Self {
        let plan = Self { pairs };
        assert!(plan.is_valid(), "assignment reuses a task or worker");
        plan
    }

    /// Adds a pair; returns `false` (and does not add) if the task or
    /// worker is already assigned.
    pub fn try_push(&mut self, pair: AssignmentPair) -> bool {
        if self
            .pairs
            .iter()
            .any(|p| p.task == pair.task || p.worker == pair.worker)
        {
            return false;
        }
        self.pairs.push(pair);
        true
    }

    /// Merges another plan into this one, skipping conflicting pairs.
    /// Returns how many pairs were actually merged.
    pub fn merge(&mut self, other: Assignment) -> usize {
        let mut merged = 0;
        for p in other.pairs {
            if self.try_push(p) {
                merged += 1;
            }
        }
        merged
    }

    /// The pairs of the plan.
    #[inline]
    pub fn pairs(&self) -> &[AssignmentPair] {
        &self.pairs
    }

    /// `|M|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the plan is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Validity check of Definition 4: every task and every worker occurs
    /// at most once.
    pub fn is_valid(&self) -> bool {
        let mut tasks = HashSet::with_capacity(self.pairs.len());
        let mut workers = HashSet::with_capacity(self.pairs.len());
        self.pairs
            .iter()
            .all(|p| tasks.insert(p.task) && workers.insert(p.worker))
    }

    /// Set of assigned task ids.
    pub fn assigned_tasks(&self) -> HashSet<TaskId> {
        self.pairs.iter().map(|p| p.task).collect()
    }

    /// Set of assigned worker ids.
    pub fn assigned_workers(&self) -> HashSet<WorkerId> {
        self.pairs.iter().map(|p| p.worker).collect()
    }

    /// The worker assigned to `task`, if any.
    pub fn worker_for(&self, task: TaskId) -> Option<WorkerId> {
        self.pairs.iter().find(|p| p.task == task).map(|p| p.worker)
    }
}

/// The outcome of one `(τ, w)` pair after the worker reported back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PairOutcome {
    /// Worker accepted and completed the task at the given real detour
    /// cost `d_c` in kilometres.
    Accepted {
        /// Real detour the worker travelled.
        detour_km: f64,
    },
    /// Worker rejected the assignment (detour or deadline violated by the
    /// real itinerary).
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(t: u64, w: u64) -> AssignmentPair {
        AssignmentPair {
            task: TaskId(t),
            worker: WorkerId(w),
            score: 1.0,
        }
    }

    #[test]
    fn push_rejects_duplicates() {
        let mut m = Assignment::new();
        assert!(m.try_push(pair(1, 1)));
        assert!(!m.try_push(pair(1, 2)), "task reused");
        assert!(!m.try_push(pair(2, 1)), "worker reused");
        assert!(m.try_push(pair(2, 2)));
        assert_eq!(m.len(), 2);
        assert!(m.is_valid());
    }

    #[test]
    fn merge_skips_conflicts() {
        let mut a = Assignment::from_pairs(vec![pair(1, 1)]);
        let b = Assignment::from_pairs(vec![pair(1, 2), pair(3, 3)]);
        let merged = a.merge(b);
        assert_eq!(merged, 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.worker_for(TaskId(3)), Some(WorkerId(3)));
        assert_eq!(a.worker_for(TaskId(1)), Some(WorkerId(1)));
    }

    #[test]
    #[should_panic(expected = "reuses")]
    fn from_pairs_panics_on_invalid() {
        Assignment::from_pairs(vec![pair(1, 1), pair(2, 1)]);
    }

    #[test]
    fn id_sets() {
        let m = Assignment::from_pairs(vec![pair(1, 10), pair(2, 20)]);
        assert!(m.assigned_tasks().contains(&TaskId(2)));
        assert!(m.assigned_workers().contains(&WorkerId(10)));
        assert_eq!(m.worker_for(TaskId(9)), None);
    }
}

//! A GRU cell with exact backpropagation through time.
//!
//! The paper's encoder–decoder reference (\[27\], Cho et al.) is actually
//! the GRU paper; the evaluation instantiates LSTMs (\[28\]). This module
//! provides the GRU alternative so downstream users can swap the
//! recurrent substrate. Formulation:
//!
//! ```text
//! r = σ(W_r·[x; h] + b_r)          reset gate
//! z = σ(W_z·[x; h] + b_z)          update gate
//! n = tanh(W_n·[x; r ⊙ h] + b_n)   candidate
//! h' = (1 − z) ⊙ n + z ⊙ h
//! ```
//!
//! Gates are stored in one `(3H) × (I+H)` matrix (row blocks `r, z, n`)
//! plus a `3H` bias, mirroring [`crate::lstm::LstmCell`]'s layout
//! conventions.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Everything the backward pass needs from one forward step.
#[derive(Debug, Clone)]
pub struct GruStepCache {
    /// Concatenated `[x; h_prev]`.
    pub z_in: Vec<f64>,
    /// Reset gate activations.
    pub r: Vec<f64>,
    /// Update gate activations.
    pub z: Vec<f64>,
    /// Candidate activations.
    pub n: Vec<f64>,
    /// Hidden state entering the step.
    pub h_prev: Vec<f64>,
}

impl GruStepCache {
    /// An empty cache whose buffers grow on first use (workspace slot).
    pub fn empty() -> Self {
        Self {
            z_in: Vec::new(),
            r: Vec::new(),
            z: Vec::new(),
            n: Vec::new(),
            h_prev: Vec::new(),
        }
    }
}

/// A GRU cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GruCell {
    input_dim: usize,
    hidden: usize,
    /// `(3H) × (I+H)` gate weights, row blocks `r, z, n`. The `n` block's
    /// hidden columns act on `r ⊙ h`.
    pub w: Matrix,
    /// `3H` gate biases.
    pub b: Vec<f64>,
}

/// Gradients of a [`GruCell`], same shapes as the parameters.
#[derive(Debug, Clone)]
pub struct GruGrad {
    /// Gradient of `w`.
    pub dw: Matrix,
    /// Gradient of `b`.
    pub db: Vec<f64>,
}

impl GruGrad {
    /// Zero gradients for a cell of the given shape.
    pub fn zeros(cell: &GruCell) -> Self {
        Self {
            dw: Matrix::zeros(cell.w.rows(), cell.w.cols()),
            db: vec![0.0; cell.b.len()],
        }
    }
}

impl GruCell {
    /// A new cell with Xavier weights and zero biases.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            input_dim,
            hidden,
            w: Matrix::xavier(3 * hidden, input_dim + hidden, rng),
            b: vec![0.0; 3 * hidden],
        }
    }

    /// Input dimension `I`.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimension `H`.
    #[inline]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// One forward step: returns the next hidden state and the cache for
    /// [`GruCell::backward_step`].
    pub fn forward_step(&self, x: &[f64], h_prev: &[f64]) -> (Vec<f64>, GruStepCache) {
        let mut h = Vec::new();
        let mut cache = GruStepCache::empty();
        self.forward_step_ws(x, h_prev, &mut h, &mut cache);
        (h, cache)
    }

    /// [`GruCell::forward_step`] into caller-owned buffers. The three gate
    /// rows are read as contiguous slices of the fused `(3H) × (I+H)`
    /// matrix instead of per-element `get` calls; each accumulator still
    /// starts from the bias and adds products in column order, so results
    /// are bit-identical to the original formulation.
    #[allow(clippy::needless_range_loop)] // indexed gate math mirrors the equations
    pub fn forward_step_ws(
        &self,
        x: &[f64],
        h_prev: &[f64],
        h_out: &mut Vec<f64>,
        cache: &mut GruStepCache,
    ) {
        assert_eq!(x.len(), self.input_dim, "gru input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden, "gru state dim mismatch");
        let hd = self.hidden;
        let id = self.input_dim;
        cache.z_in.clear();
        cache.z_in.extend_from_slice(x);
        cache.z_in.extend_from_slice(h_prev);

        // r and z gates over [x; h].
        cache.r.resize(hd, 0.0);
        cache.z.resize(hd, 0.0);
        for k in 0..hd {
            let row_r = self.w.row(k);
            let row_z = self.w.row(hd + k);
            let mut ar = self.b[k];
            let mut az = self.b[hd + k];
            for (c, v) in cache.z_in.iter().enumerate() {
                ar += row_r[c] * v;
                az += row_z[c] * v;
            }
            cache.r[k] = sigmoid(ar);
            cache.z[k] = sigmoid(az);
        }
        // Candidate over [x; r ⊙ h].
        cache.n.resize(hd, 0.0);
        for k in 0..hd {
            let row_n = self.w.row(2 * hd + k);
            let mut an = self.b[2 * hd + k];
            for c in 0..id {
                an += row_n[c] * x[c];
            }
            for j in 0..hd {
                an += row_n[id + j] * (cache.r[j] * h_prev[j]);
            }
            cache.n[k] = an.tanh();
        }
        h_out.resize(hd, 0.0);
        for k in 0..hd {
            h_out[k] = (1.0 - cache.z[k]) * cache.n[k] + cache.z[k] * h_prev[k];
        }
        cache.h_prev.clear();
        cache.h_prev.extend_from_slice(h_prev);
    }

    /// One backward step of BPTT: accumulates parameter gradients into
    /// `grad` and returns `(dx, dh_prev)`.
    pub fn backward_step(
        &self,
        cache: &GruStepCache,
        dh: &[f64],
        grad: &mut GruGrad,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut dx = Vec::new();
        let mut dh_prev = Vec::new();
        let mut scratch = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        self.backward_step_ws(
            cache,
            dh,
            grad,
            &mut dx,
            &mut dh_prev,
            &mut scratch.0,
            &mut scratch.1,
            &mut scratch.2,
            &mut scratch.3,
        );
        (dx, dh_prev)
    }

    /// [`GruCell::backward_step`] with caller-owned scratch (`dn`, `dz`,
    /// `dan`, `dr` are the per-gate intermediaries). Gate rows are
    /// accessed as slices of the fused weight matrix; the accumulation
    /// order matches the per-element original exactly.
    #[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
    pub fn backward_step_ws(
        &self,
        cache: &GruStepCache,
        dh: &[f64],
        grad: &mut GruGrad,
        dx: &mut Vec<f64>,
        dh_prev: &mut Vec<f64>,
        dn: &mut Vec<f64>,
        dz: &mut Vec<f64>,
        dan: &mut Vec<f64>,
        dr: &mut Vec<f64>,
    ) {
        let hd = self.hidden;
        let id = self.input_dim;
        assert_eq!(dh.len(), hd);

        // h' = (1−z)·n + z·h_prev
        dn.resize(hd, 0.0);
        dz.resize(hd, 0.0);
        dh_prev.resize(hd, 0.0);
        for k in 0..hd {
            dn[k] = dh[k] * (1.0 - cache.z[k]);
            dz[k] = dh[k] * (cache.h_prev[k] - cache.n[k]);
            dh_prev[k] = dh[k] * cache.z[k];
        }

        // Candidate pre-activation gradient.
        dan.resize(hd, 0.0);
        for k in 0..hd {
            dan[k] = dn[k] * (1.0 - cache.n[k] * cache.n[k]);
        }
        // Its input contributions: x part and (r ⊙ h_prev) part.
        dx.clear();
        dx.resize(id, 0.0);
        dr.clear();
        dr.resize(hd, 0.0);
        for k in 0..hd {
            let row = 2 * hd + k;
            grad.db[row] += dan[k];
            let w_row = self.w.row(row);
            let g_row = grad.dw.row_mut(row);
            for c in 0..id {
                g_row[c] += dan[k] * cache.z_in[c];
                dx[c] += w_row[c] * dan[k];
            }
            for j in 0..hd {
                let rh = cache.r[j] * cache.h_prev[j];
                g_row[id + j] += dan[k] * rh;
                let g = w_row[id + j] * dan[k];
                dr[j] += g * cache.h_prev[j];
                dh_prev[j] += g * cache.r[j];
            }
        }

        // Gate pre-activation gradients.
        for k in 0..hd {
            let dar = dr[k] * cache.r[k] * (1.0 - cache.r[k]);
            let daz = dz[k] * cache.z[k] * (1.0 - cache.z[k]);
            grad.db[k] += dar;
            grad.db[hd + k] += daz;
            let w_r = self.w.row(k);
            let w_z = self.w.row(hd + k);
            for c in 0..cache.z_in.len() {
                let back = w_r[c] * dar + w_z[c] * daz;
                if c < id {
                    dx[c] += back;
                } else {
                    dh_prev[c - id] += back;
                }
            }
            let g_r = grad.dw.row_mut(k);
            for (c, v) in cache.z_in.iter().enumerate() {
                g_r[c] += dar * v;
            }
            let g_z = grad.dw.row_mut(hd + k);
            for (c, v) in cache.z_in.iter().enumerate() {
                g_z[c] += daz * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = rng_for(1, 15);
        let cell = GruCell::new(2, 4, &mut rng);
        let h0 = vec![0.0; 4];
        let (h, cache) = cell.forward_step(&[0.3, -0.2], &h0);
        assert_eq!(h.len(), 4);
        assert_eq!(cache.z_in.len(), 6);
        // Starting from h=0, h' = (1−z)·tanh(…) ∈ (−1, 1).
        assert!(h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_update_gate_bias_keeps_reasonable_mixing() {
        let mut rng = rng_for(2, 15);
        let cell = GruCell::new(2, 3, &mut rng);
        // With large h_prev and the same input, output interpolates
        // between candidate and h_prev — it must not explode.
        let h_prev = vec![0.9, -0.9, 0.5];
        let (h, _) = cell.forward_step(&[0.1, 0.1], &h_prev);
        assert!(h.iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = rng_for(3, 15);
        let cell = GruCell::new(2, 3, &mut rng);
        let h_prev = vec![0.2, -0.3, 0.1];
        let x = [0.5, -0.7];

        let objective = |cell: &GruCell| -> f64 {
            let (h, _) = cell.forward_step(&x, &h_prev);
            h.iter().sum::<f64>()
        };

        let (_, cache) = cell.forward_step(&x, &h_prev);
        let mut grad = GruGrad::zeros(&cell);
        let ones = vec![1.0; 3];
        cell.backward_step(&cache, &ones, &mut grad);

        let eps = 1e-6;
        for &(r, c) in &[(0usize, 0usize), (2, 4), (4, 1), (8, 3), (7, 2), (5, 0)] {
            let mut plus = cell.clone();
            plus.w.set(r, c, plus.w.get(r, c) + eps);
            let mut minus = cell.clone();
            minus.w.set(r, c, minus.w.get(r, c) - eps);
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            let an = grad.dw.get(r, c);
            assert!((fd - an).abs() < 1e-6, "w[{r},{c}]: fd={fd}, an={an}");
        }
        for k in 0..9 {
            let mut plus = cell.clone();
            plus.b[k] += eps;
            let mut minus = cell.clone();
            minus.b[k] -= eps;
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            assert!((fd - grad.db[k]).abs() < 1e-6, "b[{k}]");
        }
    }

    #[test]
    fn input_and_state_gradients_match_finite_differences() {
        let mut rng = rng_for(4, 15);
        let cell = GruCell::new(2, 3, &mut rng);
        let h_prev = vec![0.15, -0.25, 0.35];
        let x = [0.4, 0.6];

        let objective = |x: &[f64], h: &[f64]| -> f64 {
            let (out, _) = cell.forward_step(x, h);
            out.iter().sum::<f64>()
        };

        let (_, cache) = cell.forward_step(&x, &h_prev);
        let mut grad = GruGrad::zeros(&cell);
        let ones = vec![1.0; 3];
        let (dx, dh_prev) = cell.backward_step(&cache, &ones, &mut grad);

        let eps = 1e-6;
        for k in 0..2 {
            let mut xp = x;
            xp[k] += eps;
            let mut xm = x;
            xm[k] -= eps;
            let fd = (objective(&xp, &h_prev) - objective(&xm, &h_prev)) / (2.0 * eps);
            assert!((fd - dx[k]).abs() < 1e-6, "dx[{k}]: fd={fd} an={}", dx[k]);
        }
        for k in 0..3 {
            let mut hp = h_prev.clone();
            hp[k] += eps;
            let mut hm = h_prev.clone();
            hm[k] -= eps;
            let fd = (objective(&x, &hp) - objective(&x, &hm)) / (2.0 * eps);
            assert!(
                (fd - dh_prev[k]).abs() < 1e-6,
                "dh_prev[{k}]: fd={fd} an={}",
                dh_prev[k]
            );
        }
    }

    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        // Reusing dirty scratch buffers must give exactly the same
        // numbers as fresh allocations on every call.
        let mut rng = rng_for(6, 15);
        let cell = GruCell::new(3, 5, &mut rng);
        let xs = [
            vec![0.4, -0.2, 0.9],
            vec![-0.6, 0.1, 0.3],
            vec![0.2, 0.8, -0.5],
        ];

        // Reference: allocating path.
        let mut h_ref = vec![0.0; 5];
        let mut caches_ref = Vec::new();
        for x in &xs {
            let (h, c) = cell.forward_step(x, &h_ref);
            h_ref = h;
            caches_ref.push(c);
        }
        let mut grad_ref = GruGrad::zeros(&cell);
        let mut dh = vec![1.0; 5];
        let mut dx_ref_all = Vec::new();
        for c in caches_ref.iter().rev() {
            let (dx, dh_prev) = cell.backward_step(c, &dh, &mut grad_ref);
            dx_ref_all.push(dx);
            dh = dh_prev;
        }

        // Workspace path with deliberately dirty buffers.
        let mut h_ws = vec![0.0; 5];
        let mut h_buf = vec![9.9; 17];
        let mut cache = GruStepCache::empty();
        cache.z_in = vec![7.0; 31];
        cache.r = vec![-3.0; 2];
        let mut caches_ws = Vec::new();
        for x in &xs {
            cell.forward_step_ws(x, &h_ws, &mut h_buf, &mut cache);
            h_ws.clear();
            h_ws.extend_from_slice(&h_buf);
            caches_ws.push(cache.clone());
        }
        assert_eq!(h_ws, h_ref);
        for (a, b) in caches_ws.iter().zip(&caches_ref) {
            assert_eq!(a.z_in, b.z_in);
            assert_eq!(a.r, b.r);
            assert_eq!(a.z, b.z);
            assert_eq!(a.n, b.n);
            assert_eq!(a.h_prev, b.h_prev);
        }

        let mut grad_ws = GruGrad::zeros(&cell);
        let mut dh = vec![1.0; 5];
        let (mut dx, mut dh_prev) = (vec![5.0; 9], vec![5.0; 9]);
        let (mut dn, mut dzv, mut dan, mut dr) =
            (vec![1.0; 3], vec![2.0; 4], vec![3.0; 5], vec![4.0; 6]);
        for (i, c) in caches_ws.iter().rev().enumerate() {
            cell.backward_step_ws(
                c,
                &dh,
                &mut grad_ws,
                &mut dx,
                &mut dh_prev,
                &mut dn,
                &mut dzv,
                &mut dan,
                &mut dr,
            );
            assert_eq!(dx, dx_ref_all[i]);
            dh.clear();
            dh.extend_from_slice(&dh_prev);
        }
        assert_eq!(grad_ws.db, grad_ref.db);
        for r in 0..grad_ws.dw.rows() {
            assert_eq!(grad_ws.dw.row(r), grad_ref.dw.row(r));
        }
    }

    #[test]
    fn sequence_training_reduces_loss() {
        // A 2-step unrolled GRU can learn to echo a scaled input.
        let mut rng = rng_for(5, 15);
        let mut cell = GruCell::new(1, 4, &mut rng);
        let head: Vec<f64> = vec![0.5; 4]; // fixed linear readout
        let data: Vec<(f64, f64, f64)> = (0..16)
            .map(|i| {
                let a = (i as f64) / 16.0 - 0.5;
                let b = ((i * 7) % 16) as f64 / 16.0 - 0.5;
                (a, b, 0.8 * b)
            })
            .collect();

        let loss_of = |cell: &GruCell| -> f64 {
            data.iter()
                .map(|&(a, b, y)| {
                    let h0 = vec![0.0; 4];
                    let (h1, _) = cell.forward_step(&[a], &h0);
                    let (h2, _) = cell.forward_step(&[b], &h1);
                    let out: f64 = h2.iter().zip(&head).map(|(h, w)| h * w).sum();
                    (out - y) * (out - y)
                })
                .sum::<f64>()
                / data.len() as f64
        };

        let initial = loss_of(&cell);
        for _ in 0..200 {
            let mut grad = GruGrad::zeros(&cell);
            for &(a, b, y) in &data {
                let h0 = vec![0.0; 4];
                let (h1, c1) = cell.forward_step(&[a], &h0);
                let (h2, c2) = cell.forward_step(&[b], &h1);
                let out: f64 = h2.iter().zip(&head).map(|(h, w)| h * w).sum();
                let dout = 2.0 * (out - y) / data.len() as f64;
                let dh2: Vec<f64> = head.iter().map(|w| dout * w).collect();
                let (_, dh1) = cell.backward_step(&c2, &dh2, &mut grad);
                let (_, _) = cell.backward_step(&c1, &dh1, &mut grad);
            }
            for r in 0..cell.w.rows() {
                for c in 0..cell.w.cols() {
                    cell.w.set(r, c, cell.w.get(r, c) - 2.0 * grad.dw.get(r, c));
                }
            }
            for (b, g) in cell.b.iter_mut().zip(&grad.db) {
                *b -= 2.0 * g;
            }
        }
        let trained = loss_of(&cell);
        assert!(
            trained < initial * 0.5,
            "GRU training should halve the loss: {initial} → {trained}"
        );
    }
}

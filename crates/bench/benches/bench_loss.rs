//! Micro-bench: the task-assignment-oriented loss (Eq. 6–7, density
//! queries per point) vs plain MSE — the training-time overhead the
//! paper attributes to PPI/KM vs their `-loss` variants.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use std::hint::black_box;
use tamp_core::rng::rng_for;
use tamp_core::{Grid, Point};
use tamp_nn::loss::Pt2;
use tamp_nn::{Loss, MseLoss, TaskDensityMap, TaskOrientedLoss, WeightParams};

fn bench(c: &mut Criterion) {
    let grid = Grid::PAPER;
    let mut rng = rng_for(1, 0);
    let tasks: Vec<Point> = (0..20_000)
        .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)))
        .collect();
    let weighted =
        TaskOrientedLoss::new(TaskDensityMap::build(grid, &tasks), WeightParams::default());
    let pred: Pt2 = [0.31, 0.52];
    let target: Pt2 = [0.30, 0.50];

    let mut group = c.benchmark_group("loss");
    group
        .sample_size(50)
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("mse_step", |b| {
        b.iter(|| black_box(MseLoss.step(black_box(pred), black_box(target), 3)))
    });
    group.bench_function("task_oriented_step", |b| {
        b.iter(|| black_box(weighted.step(black_box(pred), black_box(target), 3)))
    });
    group.bench_function("density_query", |b| {
        b.iter(|| black_box(weighted.weight_at(black_box(Point::new(6.0, 5.0)))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

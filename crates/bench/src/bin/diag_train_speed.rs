//! Measures the training-path overhaul at paper scale (442 workers):
//! end-to-end FOMAML meta-training with the pre-overhaul kernels
//! (per-step allocating forward/backward, cloned weight vectors,
//! per-call gradient buffers) vs the fused workspace-reuse path, serial
//! and parallel. Asserts all arms produce byte-identical parameters,
//! then writes the median timings and speedup breakdown to
//! `results/train_speed.json`.
//!
//! Environment: `TAMP_SEED` (default 42), `TAMP_REPEATS` (default 5),
//! `TAMP_META_ITERS` (default 20), `TAMP_SCALE` (default `paper`),
//! `TAMP_OUT` (default `results/`).

use std::time::Instant;
use tamp_bench::{out_dir, seed_from_env};
use tamp_core::rng::{rng_for, streams};
use tamp_meta::meta_training::{meta_train, resolve_threads, MetaConfig};
use tamp_meta::LearningTask;
use tamp_nn::dense::{Dense, DenseGrad};
use tamp_nn::loss::Pt2;
use tamp_nn::lstm::{LstmCell, LstmGrad};
use tamp_nn::matrix::Matrix;
use tamp_nn::seq2seq::CellKind;
use tamp_nn::{clip_grad_norm, Loss, MseLoss, Seq2Seq, Seq2SeqConfig, TrainBatch};
use tamp_platform::training::{build_learning_tasks, TrainingConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

/// The per-step feature vector the model feeds its cells (location plus
/// displacement) — copied from the model so the naive arm is fed the
/// exact same inputs.
#[inline]
fn step_features(cur: Pt2, prev: Pt2) -> [f64; 4] {
    [cur[0], cur[1], cur[0] - prev[0], cur[1] - prev[1]]
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Pre-overhaul matrix–vector product: one row at a time with a single
/// accumulator chain (the overhauled `matvec_into` runs four rows with
/// independent chains — same per-row addition order, hence bit-equal,
/// but much better instruction-level parallelism).
fn naive_matvec(w: &Matrix, x: &[f64]) -> Vec<f64> {
    let (rows, cols) = (w.rows(), w.cols());
    let data = w.as_slice();
    let mut y = vec![0.0; rows];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let mut acc = 0.0;
        for (a, b) in row.iter().zip(x) {
            acc += a * b;
        }
        y[r] = acc;
    }
    y
}

/// Pre-overhaul transposed product, allocating its output per call.
fn naive_matvec_t(w: &Matrix, x: &[f64]) -> Vec<f64> {
    let (rows, cols) = (w.rows(), w.cols());
    let data = w.as_slice();
    let mut y = vec![0.0; cols];
    for (r, &xr) in x.iter().enumerate().take(rows) {
        if xr == 0.0 {
            continue;
        }
        let row = &data[r * cols..(r + 1) * cols];
        for (yc, a) in y.iter_mut().zip(row) {
            *yc += a * xr;
        }
    }
    y
}

/// Pre-overhaul recurrent state: freshly allocated per step.
struct NaiveState {
    h: Vec<f64>,
    c: Vec<f64>,
}

impl NaiveState {
    fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Pre-overhaul step cache — no stored `tanh(c)`; the backward pass
/// re-evaluates it, as the original kernel did.
struct NaiveCache {
    z: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c_prev: Vec<f64>,
    c: Vec<f64>,
}

/// Line-for-line pre-overhaul `LstmCell::forward_step`: fresh gate
/// vectors, state, and cache every call.
fn naive_forward_step(cell: &LstmCell, x: &[f64], state: &NaiveState) -> (NaiveState, NaiveCache) {
    let h = cell.hidden();
    let mut z = Vec::with_capacity(cell.input_dim() + h);
    z.extend_from_slice(x);
    z.extend_from_slice(&state.h);

    let mut a = naive_matvec(&cell.w, &z);
    for (av, bv) in a.iter_mut().zip(&cell.b) {
        *av += bv;
    }

    let mut i = vec![0.0; h];
    let mut f = vec![0.0; h];
    let mut g = vec![0.0; h];
    let mut o = vec![0.0; h];
    for k in 0..h {
        i[k] = sigmoid(a[k]);
        f[k] = sigmoid(a[h + k]);
        g[k] = a[2 * h + k].tanh();
        o[k] = sigmoid(a[3 * h + k]);
    }

    let mut c = vec![0.0; h];
    let mut h_new = vec![0.0; h];
    for k in 0..h {
        c[k] = f[k] * state.c[k] + i[k] * g[k];
        h_new[k] = o[k] * c[k].tanh();
    }

    let cache = NaiveCache {
        z,
        i,
        f,
        g,
        o,
        c_prev: state.c.clone(),
        c: c.clone(),
    };
    (NaiveState { h: h_new, c }, cache)
}

/// Line-for-line pre-overhaul `LstmCell::backward_step`, including the
/// per-call `da`/`dz` allocations and the `dx` split the meta loop then
/// discards.
fn naive_backward_step(
    cell: &LstmCell,
    cache: &NaiveCache,
    dh: &[f64],
    dc_next: &[f64],
    grad: &mut LstmGrad,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let h = cell.hidden();
    let mut da = vec![0.0; 4 * h];
    let mut dc_prev = vec![0.0; h];
    for k in 0..h {
        let tanh_c = cache.c[k].tanh();
        let do_ = dh[k] * tanh_c;
        let dc = dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c) + dc_next[k];
        let di = dc * cache.g[k];
        let df = dc * cache.c_prev[k];
        let dg = dc * cache.i[k];
        dc_prev[k] = dc * cache.f[k];

        da[k] = di * cache.i[k] * (1.0 - cache.i[k]);
        da[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
        da[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
        da[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
    }

    grad.dw.add_outer(1.0, &da, &cache.z);
    for (gb, d) in grad.db.iter_mut().zip(&da) {
        *gb += d;
    }

    let dz = naive_matvec_t(&cell.w, &da);
    let dx = dz[..cell.input_dim()].to_vec();
    let dh_prev = dz[cell.input_dim()..].to_vec();
    (dx, dh_prev, dc_prev)
}

/// Pre-overhaul `Dense::forward` / `Dense::backward`, allocating per call.
fn naive_dense_forward(d: &Dense, x: &[f64]) -> Vec<f64> {
    let mut y = naive_matvec(&d.w, x);
    for (yv, bv) in y.iter_mut().zip(&d.b) {
        *yv += bv;
    }
    y
}

fn naive_dense_backward(d: &Dense, x: &[f64], dy: &[f64], grad: &mut DenseGrad) -> Vec<f64> {
    grad.dw.add_outer(1.0, dy, x);
    for (gb, dv) in grad.db.iter_mut().zip(dy) {
        *gb += dv;
    }
    naive_matvec_t(&d.w, dy)
}

/// The encoder–decoder rebuilt from the pre-overhaul kernels above:
/// single-chain GEMV, a fresh state + cache per step, fresh gradient
/// buffers per call, and a flattening pass at the end. Arithmetic is
/// bit-identical to `Seq2Seq::loss_and_grad_ws`, so the measured gap is
/// exactly the overhaul's allocation + fusion + ILP work.
struct NaiveModel {
    enc: LstmCell,
    dec: LstmCell,
    head: Dense,
    hidden: usize,
}

impl NaiveModel {
    fn like(template: &Seq2Seq) -> Self {
        let cfg = template.config();
        assert_eq!(cfg.cell, CellKind::Lstm, "naive arm models the LSTM path");
        let mut rng = rng_for(0, 0);
        let out = Self {
            enc: LstmCell::new(Seq2Seq::FEATURE_DIM, cfg.hidden, &mut rng),
            dec: LstmCell::new(Seq2Seq::FEATURE_DIM, cfg.hidden, &mut rng),
            head: Dense::new(cfg.hidden, Seq2Seq::POINT_DIM, &mut rng),
            hidden: cfg.hidden,
        };
        assert_eq!(
            out.enc.n_params() + out.dec.n_params() + out.head.n_params(),
            template.n_params()
        );
        out
    }

    /// Same flat layout as [`Seq2Seq::params`]: encoder w+b, decoder
    /// w+b, head w+b.
    fn set_params(&mut self, flat: &[f64]) {
        fn take(dst: &mut [f64], flat: &[f64], off: &mut usize) {
            dst.copy_from_slice(&flat[*off..*off + dst.len()]);
            *off += dst.len();
        }
        let mut off = 0usize;
        take(self.enc.w.as_mut_slice(), flat, &mut off);
        take(&mut self.enc.b, flat, &mut off);
        take(self.dec.w.as_mut_slice(), flat, &mut off);
        take(&mut self.dec.b, flat, &mut off);
        take(self.head.w.as_mut_slice(), flat, &mut off);
        take(&mut self.head.b, flat, &mut off);
        assert_eq!(off, flat.len(), "param layout mismatch");
    }

    /// Line-for-line reconstruction of the pre-overhaul
    /// `Seq2Seq::loss_and_grad` (teacher-forced forward, exact BPTT),
    /// with its original allocation pattern.
    fn loss_and_grad(&self, batch: &TrainBatch, loss: &dyn Loss) -> (f64, Vec<f64>) {
        assert!(!batch.is_empty(), "empty training batch");
        let h = self.hidden;
        let mut enc_grad = LstmGrad::zeros(&self.enc);
        let mut dec_grad = LstmGrad::zeros(&self.dec);
        let mut head_grad = DenseGrad::zeros(&self.head);
        let mut total_loss = 0.0;

        for (input, target) in &batch.pairs {
            let mut state = NaiveState::zeros(h);
            let mut enc_caches = Vec::with_capacity(input.len());
            for (i, x) in input.iter().enumerate() {
                let before = input[i.saturating_sub(1)];
                let (next, cache) =
                    naive_forward_step(&self.enc, &step_features(*x, before), &state);
                enc_caches.push(cache);
                state = next;
            }
            let seq_out = target.len();
            let mut dec_caches = Vec::with_capacity(seq_out);
            let mut dec_h = Vec::with_capacity(seq_out);
            let mut preds: Vec<Pt2> = Vec::with_capacity(seq_out);
            let mut prev = *input.last().expect("non-empty");
            let mut before = input[input.len().saturating_sub(2)];
            for tgt in target.iter().take(seq_out) {
                let (next, cache) =
                    naive_forward_step(&self.dec, &step_features(prev, before), &state);
                dec_caches.push(cache);
                state = next;
                dec_h.push(state.h.clone());
                let y = naive_dense_forward(&self.head, &state.h);
                preds.push([prev[0] + y[0], prev[1] + y[1]]);
                before = prev;
                prev = *tgt;
            }

            let mut dy = Vec::with_capacity(seq_out);
            for t in 0..seq_out {
                let (l, g) = loss.step(preds[t], target[t], seq_out);
                total_loss += l;
                dy.push(g);
            }

            let mut dh = vec![0.0; h];
            let mut dc = vec![0.0; h];
            for t in (0..seq_out).rev() {
                let dh_head = naive_dense_backward(&self.head, &dec_h[t], &dy[t], &mut head_grad);
                for k in 0..h {
                    dh[k] += dh_head[k];
                }
                let (_dx, dh_prev, dc_prev) =
                    naive_backward_step(&self.dec, &dec_caches[t], &dh, &dc, &mut dec_grad);
                dh = dh_prev;
                dc = dc_prev;
            }
            for cache in enc_caches.iter().rev() {
                let (_dx, dh_prev, dc_prev) =
                    naive_backward_step(&self.enc, cache, &dh, &dc, &mut enc_grad);
                dh = dh_prev;
                dc = dc_prev;
            }
        }

        let inv = 1.0 / batch.len() as f64;
        let mut flat = Vec::new();
        flat.extend(enc_grad.dw.as_slice().iter().map(|g| g * inv));
        flat.extend(enc_grad.db.iter().map(|g| g * inv));
        flat.extend(dec_grad.dw.as_slice().iter().map(|g| g * inv));
        flat.extend(dec_grad.db.iter().map(|g| g * inv));
        flat.extend(head_grad.dw.as_slice().iter().map(|g| g * inv));
        flat.extend(head_grad.db.iter().map(|g| g * inv));
        (total_loss * inv, flat)
    }
}

/// The pre-overhaul Meta-Training loop: a fresh `θᵢ` clone per task, the
/// allocating kernels above, element-wise update loops.
fn meta_train_naive(
    theta: &mut [f64],
    tasks: &[&LearningTask],
    model: &mut NaiveModel,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    rng: &mut impl rand::Rng,
) -> f64 {
    let trainable: Vec<&LearningTask> =
        tasks.iter().copied().filter(|t| t.is_trainable()).collect();
    if trainable.is_empty() {
        return 0.0;
    }
    let mut total_query = 0.0;
    let mut query_count = 0usize;
    for _iter in 0..cfg.iterations {
        let m = cfg.batch_tasks.max(1);
        let batch: Vec<&LearningTask> = (0..m)
            .map(|_| trainable[rng.gen_range(0..trainable.len())])
            .collect();
        let mut meta_grad = vec![0.0; theta.len()];
        for task in batch {
            let mut theta_i = theta.to_vec();
            for _ in 0..cfg.adapt_steps {
                model.set_params(&theta_i);
                let sb = task.support_batch(cfg.adapt_batch, rng);
                let (_, mut grad) = model.loss_and_grad(&sb, loss);
                clip_grad_norm(&mut grad, cfg.clip_norm);
                for (p, g) in theta_i.iter_mut().zip(&grad) {
                    *p -= cfg.beta * g;
                }
            }
            model.set_params(&theta_i);
            let qb = task.query_batch(cfg.query_batch, rng);
            let (ql, qgrad) = model.loss_and_grad(&qb, loss);
            total_query += ql;
            query_count += 1;
            for (mg, g) in meta_grad.iter_mut().zip(&qgrad) {
                *mg += g;
            }
        }
        let inv = 1.0 / m as f64;
        for g in meta_grad.iter_mut() {
            *g *= inv;
        }
        clip_grad_norm(&mut meta_grad, cfg.clip_norm);
        for (p, g) in theta.iter_mut().zip(&meta_grad) {
            *p -= cfg.alpha * g;
        }
    }
    if query_count == 0 {
        0.0
    } else {
        total_query / query_count as f64
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let seed = seed_from_env();
    let repeats = env_usize("TAMP_REPEATS", 5).max(1);
    let iterations = env_usize("TAMP_META_ITERS", 20);
    let scale = match std::env::var("TAMP_SCALE").as_deref() {
        Ok("tiny") => Scale::tiny(),
        Ok("small") => Scale::small(),
        _ => Scale::paper_workload1(),
    };

    eprintln!("building workload ({} workers)...", scale.n_workers);
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    let tcfg = TrainingConfig {
        seed,
        ..TrainingConfig::default()
    };
    let tasks = build_learning_tasks(&workload, &tcfg);
    let refs: Vec<&LearningTask> = tasks.iter().collect();
    let trainable = refs.iter().filter(|t| t.is_trainable()).count();
    eprintln!("tasks: {} ({} trainable)", tasks.len(), trainable);

    let mut init_rng = rng_for(seed, streams::WEIGHTS);
    let template = Seq2Seq::new(
        Seq2SeqConfig {
            hidden: tcfg.hidden,
            cell: tcfg.cell,
        },
        &mut init_rng,
    );
    let mut naive_model = NaiveModel::like(&template);
    let cfg = MetaConfig {
        iterations,
        batch_tasks: 16,
        ..MetaConfig::default()
    };
    let par_threads = resolve_threads(0);

    // Each arm replays the identical RNG stream, so all three runs do the
    // same arithmetic on the same samples and must agree to the last bit.
    let mut run_naive = || {
        let mut theta = template.params();
        let mut rng = rng_for(seed, streams::META);
        let t0 = Instant::now();
        let l = meta_train_naive(
            &mut theta,
            &refs,
            &mut naive_model,
            &MseLoss,
            &cfg,
            &mut rng,
        );
        (t0.elapsed().as_secs_f64(), theta, l)
    };
    let run_overhauled = |threads: usize| {
        let cfg = MetaConfig { threads, ..cfg };
        let mut theta = template.params();
        let mut rng = rng_for(seed, streams::META);
        let t0 = Instant::now();
        let l = meta_train(&mut theta, &refs, &template, &MseLoss, &cfg, &mut rng);
        (t0.elapsed().as_secs_f64(), theta, l)
    };

    let (mut t_naive, mut t_fused, mut t_par) = (Vec::new(), Vec::new(), Vec::new());
    for r in 0..repeats {
        let (tn, theta_n, loss_n) = run_naive();
        let (tf, theta_f, loss_f) = run_overhauled(1);
        let (tp, theta_p, loss_p) = run_overhauled(par_threads);
        assert_eq!(theta_f, theta_n, "fused path drifted from the naive arm");
        assert_eq!(theta_p, theta_n, "parallel path drifted from the naive arm");
        assert_eq!(loss_f, loss_n);
        assert_eq!(loss_p, loss_n);
        eprintln!(
            "repeat {}/{repeats}: naive {tn:.3}s  fused {tf:.3}s  parallel({par_threads}) {tp:.3}s",
            r + 1
        );
        t_naive.push(tn);
        t_fused.push(tf);
        t_par.push(tp);
    }

    let (mn, mf, mp) = (
        median(&mut t_naive),
        median(&mut t_fused),
        median(&mut t_par),
    );
    // Hand-formatted JSON: the measurement record must reflect the real
    // numbers even in stripped build environments where serde_json is
    // substituted, so skip the serialization layer entirely.
    let json = format!(
        "{{\n  \"name\": \"train_speed\",\n  \"scale\": {{ \"n_workers\": {}, \"trainable_tasks\": {} }},\n  \"config\": {{\n    \"hidden\": {}, \"seq_in\": {}, \"seq_out\": {},\n    \"iterations\": {}, \"batch_tasks\": {}, \"adapt_steps\": {},\n    \"adapt_batch\": {}, \"query_batch\": {},\n    \"repeats\": {}, \"parallel_threads\": {}\n  }},\n  \"median_seconds\": {{ \"naive_serial\": {mn:.6}, \"fused_serial\": {mf:.6}, \"fused_parallel\": {mp:.6} }},\n  \"speedup\": {{\n    \"end_to_end\": {:.4},\n    \"fused_only\": {:.4},\n    \"parallel_only\": {:.4}\n  }},\n  \"byte_identical\": true\n}}\n",
        workload.workers.len(),
        trainable,
        tcfg.hidden,
        tcfg.seq_in,
        tcfg.seq_out,
        cfg.iterations,
        cfg.batch_tasks,
        cfg.adapt_steps,
        cfg.adapt_batch,
        cfg.query_batch,
        repeats,
        par_threads,
        mn / mp,
        mn / mf,
        mf / mp,
    );
    let path = out_dir().join("train_speed.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, json).expect("write train_speed.json");
    println!(
        "naive {mn:.3}s | fused {mf:.3}s ({:.2}x) | parallel x{par_threads} {mp:.3}s ({:.2}x end-to-end) -> {}",
        mn / mf,
        mn / mp,
        path.display()
    );
}

//! Bounded submission queues with explicit load shedding.
//!
//! Every shard owns one [`BoundedQueue`] that submissions flow through.
//! The bound is the backpressure mechanism: when a window's event burst
//! exceeds the capacity, [`BoundedQueue::try_push`] refuses the event
//! and hands it back, and the *caller* decides what to do with it — the
//! serve host counts it as shed (`serve.shed`, `shed_tasks` /
//! `shed_reports` in the [`crate::ShardReport`]). Nothing is ever
//! dropped silently: the accounting invariant
//! `generated == submitted + shed + unfed` is enforced by the test
//! suite.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A FIFO queue that refuses pushes beyond a fixed capacity.
///
/// Interior mutability (a mutex, uncontended in practice: one feeder,
/// one drainer, never concurrently) keeps the submission side `&self`,
/// matching how a network front-end would hand events to a shard it
/// does not own exclusively.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue accepting at most `capacity` queued items.
    /// A zero capacity is clamped to 1 (a queue that can never accept
    /// anything would shed every event, which is never what a
    /// configuration means).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it to the caller when the queue is
    /// full — the caller must account for the refusal (shed counting).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Pops the front item if `pred` accepts it (used to drain only the
    /// events belonging to the batch window being stepped).
    pub fn pop_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        if q.front().is_some_and(pred) {
            q.pop_front()
        } else {
            None
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_if(|_| true), Some(0));
        assert_eq!(q.pop_if(|_| true), Some(1));
        assert_eq!(q.pop_if(|_| true), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3), "overflow must return the event");
        assert_eq!(q.len(), 2, "refused push leaves the queue unchanged");
        q.pop_if(|_| true);
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_if_respects_the_predicate() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        assert_eq!(q.pop_if(|v| *v < 10), None, "predicate refused the front");
        assert_eq!(q.len(), 1, "refused pop leaves the item queued");
        assert_eq!(q.pop_if(|v| *v == 10), Some(10));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2));
    }
}

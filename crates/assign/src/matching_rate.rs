//! The matching-rate metric (Definition 7).
//!
//! `MR(r, r̂) = (1/|r|) Σ match(lᵢ, l̂ᵢ)` with `match = 1` iff
//! `dis(lᵢ, l̂ᵢ) ≤ a`. Theorem 2 upgrades this from a prediction metric to
//! the probability that a worker completes a feasible task without
//! violating the detour and deadline constraints, which is what the PPI
//! algorithm consumes.

use tamp_core::Point;

/// Computes `MR(r, r̂)` for aligned location sequences.
///
/// The sequences are compared position-wise; if their lengths differ, the
/// comparison runs over the common prefix (the paper evaluates aligned
/// fixed-length windows, so lengths normally agree). Returns 0 for empty
/// input.
///
/// # Examples
///
/// ```
/// use tamp_core::Point;
/// use tamp_assign::matching_rate::matching_rate;
///
/// let real = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
/// let pred = [Point::new(0.1, 0.0), Point::new(3.0, 0.0)];
/// // First point within 0.2 km, second not → MR = 0.5.
/// assert_eq!(matching_rate(&real, &pred, 0.2), 0.5);
/// ```
pub fn matching_rate(real: &[Point], predicted: &[Point], a_km: f64) -> f64 {
    let n = real.len().min(predicted.len());
    if n == 0 {
        return 0.0;
    }
    let matched = real
        .iter()
        .zip(predicted)
        .take(n)
        .filter(|(l, lh)| l.dist(**lh) <= a_km)
        .count();
    matched as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let r = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(matching_rate(&r, &r, 0.0), 1.0);
    }

    #[test]
    fn totally_wrong_scores_zero() {
        let r = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let p = pts(&[(10.0, 10.0), (20.0, 20.0)]);
        assert_eq!(matching_rate(&r, &p, 0.5), 0.0);
    }

    #[test]
    fn partial_match() {
        let r = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let p = pts(&[(0.1, 0.0), (5.0, 0.0), (2.05, 0.0), (9.0, 9.0)]);
        assert_eq!(matching_rate(&r, &p, 0.2), 0.5);
    }

    #[test]
    fn boundary_is_inclusive() {
        let r = pts(&[(0.0, 0.0)]);
        let p = pts(&[(0.3, 0.0)]);
        assert_eq!(matching_rate(&r, &p, 0.3), 1.0);
        assert_eq!(matching_rate(&r, &p, 0.29), 0.0);
    }

    #[test]
    fn length_mismatch_uses_common_prefix() {
        let r = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let p = pts(&[(0.0, 0.0)]);
        assert_eq!(matching_rate(&r, &p, 0.1), 1.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(matching_rate(&[], &[], 1.0), 0.0);
    }
}

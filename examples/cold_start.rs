//! Cold start: onboarding a brand-new worker.
//!
//! The paper's Challenge I: newcomers have almost no history, so a
//! from-scratch model can't predict them. GTTAML initialises the
//! newcomer's model from the most similar learning-task-tree node and
//! adapts from there. This example quantifies the gap: query loss after
//! k adaptation steps from (a) a random initialisation, (b) the plain
//! MAML initialisation, and (c) the GTTAML tree node chosen by the
//! cold-start lookup.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use tamp::core::rng::{rng_for, streams};
use tamp::meta::cold_start::adapt_new_worker;
use tamp::meta::gtmc::{build_tree, GtmcConfig};
use tamp::meta::maml::{adapt, gradient_paths, maml_train};
use tamp::meta::meta_training::MetaConfig;
use tamp::meta::similarity::{build_sim_matrix, FactorKind};
use tamp::meta::taml::{taml_train, TamlConfig};
use tamp::nn::{MseLoss, Seq2Seq, Seq2SeqConfig};
use tamp::platform::training::{build_learning_tasks, TrainingConfig};
use tamp::sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 11).build();
    let tcfg = TrainingConfig {
        seed: 11,
        ..TrainingConfig::default()
    };
    let tasks = build_learning_tasks(&workload, &tcfg);

    // Treat the flagged newcomers as the "arriving" workers and everyone
    // else as the veteran population the platform already trained on.
    let veterans: Vec<_> = tasks.iter().filter(|t| !t.is_new).cloned().collect();
    let newcomers: Vec<_> = tasks
        .iter()
        .filter(|t| t.is_new && t.is_trainable())
        .cloned()
        .collect();
    println!("{} veterans, {} newcomers", veterans.len(), newcomers.len());

    let mut rng = rng_for(11, streams::WEIGHTS);
    let template = Seq2Seq::new(Seq2SeqConfig::lstm(16), &mut rng);
    let meta = MetaConfig::default();
    let loss = MseLoss;

    // (b) plain MAML over the veterans.
    let mut meta_rng = rng_for(11, streams::META);
    let (maml_theta, _) = maml_train(&veterans, &template, &loss, &meta, &mut meta_rng);

    // (c) the GTTAML tree over the veterans.
    let paths = gradient_paths(&veterans, &template, &loss, 3, 0.1, 8, &mut meta_rng);
    let sims: Vec<_> = FactorKind::PAPER_ORDER
        .iter()
        .map(|f| build_sim_matrix(*f, &veterans, Some(&paths)))
        .collect();
    let mut tree = build_tree(
        veterans.len(),
        &sims,
        &GtmcConfig {
            seed: 11,
            ..GtmcConfig::default()
        },
        template.params(),
    );
    taml_train(
        &mut tree,
        &veterans,
        &template,
        &loss,
        &TamlConfig {
            meta,
            parent_blend: 0.5,
        },
        &mut meta_rng,
    );

    println!("\n newcomer | random init | MAML init | GTTAML tree init");
    for task in &newcomers {
        let eval = |model: &Seq2Seq| model.loss_only(&task.query, &loss);
        let random = adapt(
            &template.params(),
            task,
            &template,
            &loss,
            5,
            0.1,
            8,
            &mut meta_rng,
        );
        let from_maml = adapt(
            &maml_theta,
            task,
            &template,
            &loss,
            5,
            0.1,
            8,
            &mut meta_rng,
        );
        let (from_tree, node) = adapt_new_worker(
            &tree,
            &veterans,
            task,
            &template,
            &loss,
            5,
            0.1,
            8,
            &mut meta_rng,
        );
        println!(
            "  {:>7} |   {:.5}   |  {:.5}  |  {:.5}  (tree node {node})",
            task.worker_id.to_string(),
            eval(&random),
            eval(&from_maml),
            eval(&from_tree),
        );
    }
    println!("\nlower is better: the tree initialisation should at least match MAML\nand both should beat the random initialisation after 5 adapt steps.");
}

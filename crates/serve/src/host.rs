//! The serve host: owns the shards, paces the window protocol, and
//! reports.
//!
//! Per window the host (1) feeds each live shard's submissions for the
//! upcoming window into its bounded queue — refusals go through the
//! shard's overload policy, always counted — and (2) steps each live
//! shard one batch. With telemetry disabled and `threads > 1`, step (2)
//! runs the shards on a thread pool (shards share nothing); with an
//! enabled [`Obs`] the host steps sequentially so the per-shard
//! `serve.batch` spans and the engine spans nested inside them
//! serialize cleanly into one recorder.
//!
//! With a snapshot directory configured the host also writes every
//! shard's [`ShardSnapshot`] on a fixed window cadence and again on
//! graceful shutdown, which is what makes a serve process crash-safe:
//! restart from the latest snapshots and the continuation is
//! byte-identical to the run that died (see `docs/serving.md`).

use crate::clock::Pacing;
use crate::shard::{Shard, SubmissionCounts, SwapOutcome};
use crate::snapshot::ShardSnapshot;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use tamp_core::EngineError;
use tamp_obs::Obs;
use tamp_platform::metrics::{AssignmentMetrics, BatchRecord};
use tamp_platform::predcache::CacheStats;
use tamp_platform::training::TrainedPredictors;

/// Host-level configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Worker threads for stepping shards (capped at the shard count;
    /// only used while telemetry is disabled).
    pub threads: usize,
    /// Window pacing (full speed for simulation and load tests).
    pub pacing: Pacing,
    /// Write every shard's snapshot each `n` windows (and on graceful
    /// shutdown). Requires `snapshot_dir`.
    pub snapshot_every: Option<u64>,
    /// Directory snapshots are written into, one
    /// `<shard-name>.snapshot.json` per shard, overwritten in place.
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            pacing: Pacing::FullSpeed,
            snapshot_every: None,
            snapshot_dir: None,
        }
    }
}

/// End-of-run summary for one shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard name.
    pub name: String,
    /// Batch windows stepped.
    pub windows: u64,
    /// The engine's end-of-run metrics (same struct the one-shot
    /// entry points return, so serve and one-shot runs diff directly).
    pub metrics: AssignmentMetrics,
    /// Queue-side submission accounting.
    pub counts: SubmissionCounts,
    /// Prediction-cache counters.
    pub cache: CacheStats,
    /// Tasks admitted but still live when the run ended.
    pub pending_at_end: usize,
    /// Events still queued when the run ended.
    pub queued_at_end: usize,
    /// Replay events never offered to the queue (shard hit its horizon
    /// first).
    pub unfed: usize,
    /// Total events in the shard's replay stream.
    pub stream_total: usize,
    /// Crash/restore cycles the shard went through.
    #[serde(default)]
    pub crashes: u64,
    /// Median per-window step latency, milliseconds.
    pub batch_p50_ms: f64,
    /// 95th-percentile per-window step latency, milliseconds.
    pub batch_p95_ms: f64,
    /// 99th-percentile per-window step latency, milliseconds.
    #[serde(default)]
    pub batch_p99_ms: f64,
    /// Per-window batch records (the serve-side equivalent of the
    /// one-shot `--trace` output).
    pub trace: Vec<BatchRecord>,
}

impl ShardReport {
    /// Cache hit rate over cacheable rollouts (0 when the cache was
    /// disabled or never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }
}

/// End-of-run summary across all shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Windows the host ticked (max over shards).
    pub windows: u64,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
}

/// Per-shard counter totals already emitted to telemetry, so each tick
/// emits only deltas.
#[derive(Debug, Clone, Copy, Default)]
struct Reported {
    shed: usize,
    degraded: usize,
    retried: usize,
    crashes: u64,
}

/// The long-running service host (see the module docs).
pub struct ServeHost {
    shards: Vec<Shard>,
    cfg: HostConfig,
    windows: u64,
    reported: Vec<Reported>,
}

impl ServeHost {
    /// A host owning `shards`, stepped per `cfg`.
    pub fn new(shards: Vec<Shard>, cfg: HostConfig) -> Self {
        let reported = vec![Reported::default(); shards.len()];
        Self {
            shards,
            cfg,
            windows: 0,
            reported,
        }
    }

    /// Whether every shard's day is over.
    pub fn all_done(&self) -> bool {
        self.shards.iter().all(Shard::done)
    }

    /// Read access to the shards (tests and diagnostics).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Snapshot of shard `idx`, if it exists.
    pub fn snapshot_shard(&self, idx: usize) -> Option<ShardSnapshot> {
        self.shards.get(idx).map(Shard::snapshot)
    }

    /// Kills shard `idx` and restores it through the JSON snapshot path
    /// (a crash drill; see [`Shard::crash_restore_in_place`]).
    pub fn crash_restore_shard(&mut self, idx: usize) -> Result<(), EngineError> {
        let shard = self
            .shards
            .get_mut(idx)
            .ok_or_else(|| EngineError::InvalidEngineConfig(format!("no shard {idx}")))?;
        shard.crash_restore_in_place()
    }

    /// Hot-swaps shard `idx`'s predictors between windows (see
    /// [`Shard::swap_predictors`]).
    pub fn swap_predictor(
        &mut self,
        idx: usize,
        predictors: TrainedPredictors,
    ) -> Result<SwapOutcome, EngineError> {
        let shard = self
            .shards
            .get_mut(idx)
            .ok_or_else(|| EngineError::InvalidEngineConfig(format!("no shard {idx}")))?;
        shard.swap_predictors(predictors)
    }

    /// Runs every shard to its horizon and reports.
    pub fn run(mut self, obs: &Obs) -> ServeReport {
        while !self.all_done() {
            self.tick(obs, true);
        }
        self.into_report(obs)
    }

    /// Advances at most `n` windows (feeding and stepping live shards),
    /// stopping early when every shard is done. Returns windows ticked.
    pub fn run_windows(&mut self, n: usize, obs: &Obs) -> usize {
        let mut ticked = 0;
        while ticked < n && !self.all_done() {
            self.tick(obs, true);
            ticked += 1;
        }
        ticked
    }

    /// Graceful shutdown: writes a final snapshot set (when
    /// configured), closes every submission queue, and keeps stepping
    /// windows until every queue is drained and no admitted task is
    /// still live (or the shard hits its horizon), then reports.
    /// Nothing in flight is lost: queued events still reach the engine,
    /// and whatever remains is accounted under `queued_at_end` /
    /// `pending_at_end` / `unfed`.
    pub fn shutdown(mut self, obs: &Obs) -> ServeReport {
        self.write_snapshots();
        for shard in &self.shards {
            shard.close_queue();
        }
        while self
            .shards
            .iter()
            .any(|s| !s.done() && (s.queue_len() > 0 || s.pending_len() > 0))
        {
            self.tick(obs, false);
        }
        // Final state after draining — what a restart would resume from.
        self.write_snapshots();
        self.into_report(obs)
    }

    /// One window: feed (optionally) and step every live shard, then
    /// write snapshots if the cadence says so.
    fn tick(&mut self, obs: &Obs, feed: bool) {
        if feed {
            for shard in self.shards.iter_mut().filter(|s| !s.done()) {
                shard.feed_window();
            }
        }
        let window_min = self
            .shards
            .iter()
            .filter(|s| !s.done())
            .map(Shard::window_min)
            .fold(0.0_f64, f64::max);
        if self.cfg.threads > 1 && !obs.is_enabled() {
            let threads = self.cfg.threads.min(self.shards.len()).max(1);
            let mut live: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| !s.done()).collect();
            let chunk = live.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for group in live.chunks_mut(chunk) {
                    scope.spawn(|| {
                        let null = Obs::null();
                        for shard in group.iter_mut() {
                            shard.step_window(&null);
                        }
                    });
                }
            });
        } else {
            for si in 0..self.shards.len() {
                if self.shards[si].done() {
                    continue;
                }
                let window_idx = self.shards[si].windows_run();
                let span = obs.span_idx("serve.batch", window_idx);
                let record = self.shards[si].step_window(obs);
                drop(span);
                let idx = Some(si as u64);
                obs.count_idx("serve.cache.hit", record.cache_hits as u64, idx);
                obs.count_idx("serve.cache.miss", record.cache_misses as u64, idx);
                obs.count_idx(
                    "serve.cache.invalidate",
                    record.cache_invalidations as u64,
                    idx,
                );
                let counts = self.shards[si].counts();
                let rep = &mut self.reported[si];
                let shed = counts.shed();
                obs.count_idx("serve.shed", (shed - rep.shed) as u64, idx);
                rep.shed = shed;
                let degraded = counts.degraded();
                obs.count_idx(
                    "serve.overload.degraded",
                    (degraded - rep.degraded) as u64,
                    idx,
                );
                rep.degraded = degraded;
                obs.count_idx(
                    "serve.overload.retried",
                    (counts.retried - rep.retried) as u64,
                    idx,
                );
                rep.retried = counts.retried;
                let crashes = self.shards[si].crashes();
                obs.count_idx("serve.crash.restore", crashes - rep.crashes, idx);
                rep.crashes = crashes;
                obs.gauge_idx("serve.queue.depth", self.shards[si].queue_len() as f64, idx);
            }
        }
        self.windows += 1;
        if let Some(every) = self.cfg.snapshot_every {
            if every > 0 && self.windows % every == 0 {
                self.write_snapshots();
            }
        }
        if let Some(pause) = self.cfg.pacing.window_sleep(window_min) {
            std::thread::sleep(pause);
        }
    }

    /// Writes one `<shard-name>.snapshot.json` per shard into the
    /// configured snapshot directory (no-op without one). I/O failures
    /// are reported on stderr, never fatal: serving outlives a full
    /// disk.
    fn write_snapshots(&self) {
        let Some(dir) = &self.cfg.snapshot_dir else {
            return;
        };
        for shard in &self.shards {
            let path = dir.join(format!("{}.snapshot.json", shard.name()));
            if let Err(e) = shard.snapshot().save_json(&path) {
                eprintln!("warning: snapshot of shard {} failed: {e}", shard.name());
            }
        }
    }

    /// Consumes the host into the end-of-run report.
    fn into_report(self, obs: &Obs) -> ServeReport {
        let windows = self.windows;
        let shards = self
            .shards
            .into_iter()
            .map(|shard| {
                let name = shard.name().to_string();
                let shard_windows = shard.windows_run();
                let pending_at_end = shard.pending_len();
                let queued_at_end = shard.queue_len();
                let unfed = shard.unfed();
                let stream_total = shard.stream_total();
                let crashes = shard.crashes();
                let cache = shard.cache_stats();
                let (p50, p95, p99) = percentiles_ms(shard.step_seconds());
                let (metrics, trace, counts) = shard.finish(obs);
                ShardReport {
                    name,
                    windows: shard_windows,
                    metrics,
                    counts,
                    cache,
                    pending_at_end,
                    queued_at_end,
                    unfed,
                    stream_total,
                    crashes,
                    batch_p50_ms: p50,
                    batch_p95_ms: p95,
                    batch_p99_ms: p99,
                    trace,
                }
            })
            .collect();
        ServeReport { windows, shards }
    }
}

/// p50/p95/p99 of a latency sample set, in milliseconds.
fn percentiles_ms(seconds: &[f64]) -> (f64, f64, f64) {
    if seconds.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted: Vec<f64> = seconds.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pick = |q: f64| {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] * 1e3
    };
    (pick(0.50), pick(0.95), pick(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64 / 1e3).collect();
        let (p50, p95, p99) = percentiles_ms(&s);
        assert!((p50 - 50.0).abs() < 1e-9);
        assert!((p95 - 95.0).abs() < 1e-9);
        assert!((p99 - 99.0).abs() < 1e-9);
        assert_eq!(percentiles_ms(&[]), (0.0, 0.0, 0.0));
    }
}

//! Measures what the spatial bucket index buys at paper scale — 442
//! workers against growing task backlogs — and proves, on the same
//! inputs, that the indexed and naive PPI paths return the *identical*
//! plan (pairs, scores, order).
//!
//! For each backlog size the PPI batch is solved `REPEATS` times per arm
//! (naive enumeration vs `use_index`), order-alternated, and the median
//! per-solve time is reported together with the speedup. The KM baseline
//! gets the same treatment via `km_assign_excluding` / `km_assign_indexed`.
//!
//! Runs offline (no criterion); writes `results/ppi_index.json`.

use rand::Rng;
use std::time::Instant;
use tamp_assign::baselines::{km_assign_excluding, km_assign_indexed};
use tamp_assign::ppi::{ppi_assign, PpiParams};
use tamp_assign::view::{ExcludedPairs, WorkerView};
use tamp_bench::{out_dir, seed_from_env};
use tamp_core::rng::rng_for;
use tamp_core::{Minutes, Point, SpatialTask, TaskId, WorkerId};
use tamp_platform::experiments::report::{print_markdown_table, save_json};

const N_WORKERS: usize = 442; // the paper's Workload 1 worker count
const REPEATS: usize = 7;

// Metro-scale map (Porto is ~40 km across). The index's win is the ratio
// of the prefilter disc (~(d/2)² π ≈ 50 km²) to the city area; cramming
// 442 workers into a toy 20×10 km box would make every worker a
// candidate for every task and measure nothing but index overhead.
const AREA_X_KM: f64 = 40.0;
const AREA_Y_KM: f64 = 30.0;

fn setup(n_tasks: usize, seed: u64) -> (Vec<SpatialTask>, Vec<WorkerView>) {
    let mut rng = rng_for(seed, 0);
    let tasks = (0..n_tasks)
        .map(|i| {
            SpatialTask::new(
                TaskId(i as u64),
                Point::new(rng.gen_range(0.0..AREA_X_KM), rng.gen_range(0.0..AREA_Y_KM)),
                Minutes::ZERO,
                Minutes::new(rng.gen_range(30.0..60.0)),
            )
        })
        .collect();
    let workers = (0..N_WORKERS)
        .map(|i| {
            let base = Point::new(rng.gen_range(0.0..AREA_X_KM), rng.gen_range(0.0..AREA_Y_KM));
            WorkerView {
                id: WorkerId(i as u64),
                current: base,
                predicted: (0..6)
                    .map(|k| base.offset(0.5 * k as f64, rng.gen_range(-0.4..0.4)))
                    .collect(),
                real_future: Vec::new(),
                mr: rng.gen_range(0.1..0.9),
                detour_limit_km: rng.gen_range(3.0..8.0),
                speed_km_per_min: rng.gen_range(0.2..0.5),
            }
        })
        .collect();
    (tasks, workers)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Plan fingerprint: (task id, worker id, score bits) per pair.
type PlanFp = Vec<(u64, u64, u64)>;

/// Times `f` over order-alternated repeats; returns (naive_median_s,
/// indexed_median_s) and checks each round's plans are byte-identical.
fn time_pair(mut f: impl FnMut(bool) -> PlanFp) -> (f64, f64) {
    let (mut naive_s, mut indexed_s) = (Vec::new(), Vec::new());
    for rep in 0..REPEATS {
        let arms = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        let mut plans: Vec<(bool, PlanFp)> = Vec::new();
        for use_index in arms {
            let t0 = Instant::now();
            let plan = f(use_index);
            let dt = t0.elapsed().as_secs_f64();
            if use_index {
                indexed_s.push(dt);
            } else {
                naive_s.push(dt);
            }
            plans.push((use_index, plan));
        }
        assert_eq!(
            plans[0].1, plans[1].1,
            "indexed and naive plans diverged (rep {rep})"
        );
    }
    (median(&mut naive_s), median(&mut indexed_s))
}

fn main() {
    let seed = seed_from_env();
    println!("# Spatial index speedup at paper scale ({N_WORKERS} workers, seed {seed})\n");

    let mut table = Vec::new();
    let mut rows = Vec::new();
    for &n_tasks in &[500usize, 1000, 3000] {
        let (tasks, workers) = setup(n_tasks, seed ^ n_tasks as u64);
        let none = ExcludedPairs::new();

        // Plans are fingerprinted as (task, worker, score bits) so the
        // equality check covers scores, not just the pairing.
        let fp = |plan: &tamp_core::assignment::Assignment| -> PlanFp {
            plan.pairs()
                .iter()
                .map(|p| (p.task.0, p.worker.0, p.score.to_bits()))
                .collect()
        };

        let (ppi_naive_s, ppi_indexed_s) = time_pair(|use_index| {
            let params = PpiParams {
                a_km: 0.4,
                epsilon: 8,
                now: Minutes::ZERO,
                use_index,
            };
            fp(&ppi_assign(&tasks, &workers, &params))
        });
        let (km_naive_s, km_indexed_s) = time_pair(|use_index| {
            let plan = if use_index {
                km_assign_indexed(&tasks, &workers, Minutes::ZERO, &none)
            } else {
                km_assign_excluding(&tasks, &workers, Minutes::ZERO, &none)
            };
            fp(&plan)
        });

        for (algo, naive_s, indexed_s) in [
            ("ppi", ppi_naive_s, ppi_indexed_s),
            ("km", km_naive_s, km_indexed_s),
        ] {
            table.push(vec![
                algo.to_string(),
                n_tasks.to_string(),
                format!("{:.1}", naive_s * 1e3),
                format!("{:.1}", indexed_s * 1e3),
                format!("{:.2}x", naive_s / indexed_s),
            ]);
            rows.push(serde_json::json!({
                "algo": algo,
                "n_workers": N_WORKERS,
                "n_tasks": n_tasks,
                "naive_ms": naive_s * 1e3,
                "indexed_ms": indexed_s * 1e3,
                "speedup": naive_s / indexed_s,
                "repeats": REPEATS,
            }));
        }
    }
    print_markdown_table(
        &["algo", "tasks", "naive (ms)", "indexed (ms)", "speedup"],
        &table,
    );
    println!("\nplans byte-identical across every repeat of every configuration");
    save_json(&out_dir().join("ppi_index.json"), "ppi_index", &rows).expect("write rows");
}

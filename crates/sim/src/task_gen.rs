//! Spatial-task synthesis.
//!
//! Tasks are drawn from a mixture of Gaussian hotspots (standing in for
//! Didi pick-up orders / Foursquare venues), arrive over the horizon with
//! a bimodal (morning/evening-peak) temporal profile, and carry deadlines
//! `release + U[lo, hi]` time units (the paper's "valid time" knob,
//! Table III).

use rand::Rng;
use tamp_core::{Grid, Minutes, Point, SpatialTask, TaskId, TIME_UNIT_MINUTES};

/// One Gaussian hotspot of the task mixture.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Hotspot centre.
    pub center: Point,
    /// Isotropic standard deviation, km.
    pub sigma_km: f64,
    /// Mixture weight (relative).
    pub weight: f64,
}

/// The task-generation configuration.
#[derive(Debug, Clone)]
pub struct TaskGenConfig {
    /// Hotspot mixture.
    pub hotspots: Vec<Hotspot>,
    /// Horizon over which tasks arrive, `[0, horizon)` minutes.
    pub horizon: Minutes,
    /// Valid time bounds in paper time units (e.g. `(3.0, 4.0)`).
    pub valid_time_units: (f64, f64),
}

fn sample_gaussian(rng: &mut impl Rng, sigma: f64) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples one location from the hotspot mixture, clamped to the grid.
pub fn sample_location(cfg: &TaskGenConfig, grid: &Grid, rng: &mut impl Rng) -> Point {
    assert!(!cfg.hotspots.is_empty(), "mixture needs hotspots");
    let total: f64 = cfg.hotspots.iter().map(|h| h.weight).sum();
    let mut pick = rng.gen_range(0.0..total);
    let mut chosen = cfg.hotspots[0];
    for h in &cfg.hotspots {
        if pick < h.weight {
            chosen = *h;
            break;
        }
        pick -= h.weight;
    }
    grid.clamp(Point::new(
        chosen.center.x + sample_gaussian(rng, chosen.sigma_km),
        chosen.center.y + sample_gaussian(rng, chosen.sigma_km),
    ))
}

/// Samples an arrival time with a bimodal day profile: 35% in an early
/// peak, 35% in a late peak, 30% uniform background.
fn sample_arrival(horizon: f64, rng: &mut impl Rng) -> f64 {
    let r: f64 = rng.gen();
    let t = if r < 0.35 {
        0.25 * horizon + sample_gaussian(rng, 0.08 * horizon)
    } else if r < 0.7 {
        0.7 * horizon + sample_gaussian(rng, 0.08 * horizon)
    } else {
        rng.gen_range(0.0..horizon)
    };
    t.clamp(0.0, horizon - 1e-6)
}

/// Generates `n` tasks over the horizon, sorted by release time.
///
/// `id_offset` lets callers draw several disjoint batches with unique ids.
pub fn generate_tasks(
    cfg: &TaskGenConfig,
    grid: &Grid,
    n: usize,
    id_offset: u64,
    rng: &mut impl Rng,
) -> Vec<SpatialTask> {
    let horizon = cfg.horizon.as_f64();
    assert!(horizon > 0.0, "horizon must be positive");
    let (lo, hi) = cfg.valid_time_units;
    assert!(lo > 0.0 && hi >= lo, "invalid valid-time interval");
    let mut tasks: Vec<SpatialTask> = (0..n)
        .map(|i| {
            let release = sample_arrival(horizon, rng);
            let valid = rng.gen_range(lo..=hi) * TIME_UNIT_MINUTES;
            SpatialTask::new(
                TaskId(id_offset + i as u64),
                sample_location(cfg, grid, rng),
                Minutes::new(release),
                Minutes::new(release + valid),
            )
        })
        .collect();
    tasks.sort_by(|a, b| {
        a.release
            .as_f64()
            .partial_cmp(&b.release.as_f64())
            .expect("finite")
    });
    tasks
}

/// Generates only hotspot-mixture locations (the *historical* task set
/// that drives the task-assignment-oriented loss, Eq. 7).
pub fn generate_historical_locations(
    cfg: &TaskGenConfig,
    grid: &Grid,
    n: usize,
    rng: &mut impl Rng,
) -> Vec<Point> {
    (0..n).map(|_| sample_location(cfg, grid, rng)).collect()
}

/// A default unaligned hotspot mixture for workload 1: dense downtown
/// spots that do *not* coincide with residential anchors.
pub fn workload1_hotspots(grid: &Grid) -> Vec<Hotspot> {
    let w = grid.width_km();
    let h = grid.height_km();
    vec![
        Hotspot {
            center: Point::new(0.62 * w, 0.5 * h),
            sigma_km: 1.2,
            weight: 3.0,
        },
        Hotspot {
            center: Point::new(0.45 * w, 0.3 * h),
            sigma_km: 1.0,
            weight: 2.0,
        },
        Hotspot {
            center: Point::new(0.8 * w, 0.7 * h),
            sigma_km: 1.5,
            weight: 2.0,
        },
        Hotspot {
            center: Point::new(0.25 * w, 0.75 * h),
            sigma_km: 1.8,
            weight: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::{rng_for, streams};

    fn cfg(grid: &Grid) -> TaskGenConfig {
        TaskGenConfig {
            hotspots: workload1_hotspots(grid),
            horizon: Minutes::new(480.0),
            valid_time_units: (3.0, 4.0),
        }
    }

    #[test]
    fn tasks_are_sorted_in_grid_with_valid_deadlines() {
        let grid = Grid::PAPER;
        let c = cfg(&grid);
        let mut rng = rng_for(1, streams::TASKS);
        let tasks = generate_tasks(&c, &grid, 300, 0, &mut rng);
        assert_eq!(tasks.len(), 300);
        for pair in tasks.windows(2) {
            assert!(pair[0].release.as_f64() <= pair[1].release.as_f64());
        }
        for t in &tasks {
            assert!(grid.contains(t.location));
            assert!(t.release.as_f64() >= 0.0 && t.release.as_f64() < 480.0);
            let valid = t.deadline.as_f64() - t.release.as_f64();
            assert!(
                (30.0..=40.0 + 1e-9).contains(&valid),
                "valid time {valid} outside [30, 40] min"
            );
        }
    }

    #[test]
    fn ids_are_unique_and_offset() {
        let grid = Grid::PAPER;
        let c = cfg(&grid);
        let mut rng = rng_for(2, streams::TASKS);
        let a = generate_tasks(&c, &grid, 50, 0, &mut rng);
        let b = generate_tasks(&c, &grid, 50, 50, &mut rng);
        let mut ids: Vec<u64> = a.iter().chain(&b).map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn locations_concentrate_near_hotspots() {
        let grid = Grid::PAPER;
        let c = cfg(&grid);
        let mut rng = rng_for(3, streams::TASKS);
        let locs = generate_historical_locations(&c, &grid, 2000, &mut rng);
        // Most samples should be within 3σ of some hotspot.
        let near = locs
            .iter()
            .filter(|l| {
                c.hotspots
                    .iter()
                    .any(|h| l.dist(h.center) < 3.0 * h.sigma_km)
            })
            .count();
        assert!(near as f64 > 0.95 * locs.len() as f64, "only {near} near");
    }

    #[test]
    fn arrivals_are_bimodal() {
        let grid = Grid::PAPER;
        let c = cfg(&grid);
        let mut rng = rng_for(4, streams::TASKS);
        let tasks = generate_tasks(&c, &grid, 3000, 0, &mut rng);
        // The two peak windows should hold clearly more than their uniform
        // share (~each window is 20% of the horizon).
        let horizon = 480.0;
        let in_window = |lo: f64, hi: f64| {
            tasks
                .iter()
                .filter(|t| t.release.as_f64() >= lo * horizon && t.release.as_f64() < hi * horizon)
                .count() as f64
                / tasks.len() as f64
        };
        assert!(in_window(0.15, 0.35) > 0.25);
        assert!(in_window(0.6, 0.8) > 0.25);
    }

    #[test]
    #[should_panic(expected = "mixture needs hotspots")]
    fn empty_mixture_panics() {
        let grid = Grid::PAPER;
        let c = TaskGenConfig {
            hotspots: vec![],
            horizon: Minutes::new(100.0),
            valid_time_units: (1.0, 2.0),
        };
        let mut rng = rng_for(5, streams::TASKS);
        sample_location(&c, &grid, &mut rng);
    }
}
